//! The conflict graph over demand instances.
//!
//! Two demand instances conflict when they belong to the same demand or
//! when they overlap on the same network (Section 2). The MIS computations
//! of the distributed algorithm (Section 5) are performed on (induced
//! subgraphs of) this graph: "the demand instances participating in the MIS
//! computation form the vertices and an edge is drawn between a pair of
//! vertices, if they are conflicting".

use netsched_graph::{DemandInstanceUniverse, GlobalEdge, InstanceId};

/// The conflict graph of a demand-instance universe.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    adj: Vec<Vec<InstanceId>>,
    num_edges: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of the whole universe.
    ///
    /// Construction is bucket-based: instances of the same demand conflict,
    /// and instances sharing a (network, edge) bucket conflict, so the cost
    /// is proportional to the sum of squared bucket sizes rather than
    /// `|D|^2 · path length`.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        let n = universe.num_instances();
        let mut adj: Vec<Vec<InstanceId>> = vec![Vec::new(); n];

        // Same-demand cliques.
        for a in 0..universe.num_demands() {
            let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    adj[d1.index()].push(d2);
                    adj[d2.index()].push(d1);
                }
            }
        }

        // Shared-edge cliques: bucket instances by global edge.
        let mut buckets: std::collections::HashMap<GlobalEdge, Vec<InstanceId>> =
            std::collections::HashMap::new();
        for inst in universe.instances() {
            for e in inst.path.iter() {
                buckets
                    .entry(GlobalEdge::new(inst.network, e))
                    .or_default()
                    .push(inst.id);
            }
        }
        for group in buckets.values() {
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    adj[d1.index()].push(d2);
                    adj[d2.index()].push(d1);
                }
            }
        }

        let mut num_edges = 0;
        for nbrs in &mut adj {
            nbrs.sort_unstable();
            nbrs.dedup();
            num_edges += nbrs.len();
        }
        Self {
            adj,
            num_edges: num_edges / 2,
        }
    }

    /// Number of vertices (demand instances).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of conflict edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The instances conflicting with `d`.
    #[inline]
    pub fn neighbors(&self, d: InstanceId) -> &[InstanceId] {
        &self.adj[d.index()]
    }

    /// Degree of `d` in the conflict graph.
    #[inline]
    pub fn degree(&self, d: InstanceId) -> usize {
        self.adj[d.index()].len()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// Returns `true` if `a` and `b` conflict.
    pub fn are_conflicting(&self, a: InstanceId, b: InstanceId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Checks that a vertex subset is independent in the conflict graph.
    pub fn is_independent(&self, set: &[InstanceId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || self.are_conflicting(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, two_tree_problem};

    #[test]
    fn conflict_graph_matches_universe_predicate() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
        ] {
            let g = ConflictGraph::build(&universe);
            assert_eq!(g.num_vertices(), universe.num_instances());
            for a in universe.instance_ids() {
                for b in universe.instance_ids() {
                    if a == b {
                        continue;
                    }
                    assert_eq!(
                        g.are_conflicting(a, b),
                        universe.conflicting(a, b),
                        "mismatch for {a}, {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_conflict_counts() {
        let u = figure1_line_problem().universe();
        let g = ConflictGraph::build(&u);
        // A–B overlap; B–C and A–C do not.
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(InstanceId::new(0)), 1);
        assert_eq!(g.degree(InstanceId::new(2)), 0);
        assert!(g.is_independent(&[InstanceId::new(0), InstanceId::new(2)]));
        assert!(!g.is_independent(&[InstanceId::new(0), InstanceId::new(1)]));
    }

    #[test]
    fn same_demand_instances_are_adjacent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let insts = u.instances_of_demand(netsched_graph::DemandId::new(0));
        assert_eq!(insts.len(), 2);
        assert!(g.are_conflicting(insts[0], insts[1]));
    }

    #[test]
    fn degrees_and_max_degree_are_consistent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let sum: usize = (0..g.num_vertices())
            .map(|i| g.degree(InstanceId::new(i)))
            .sum();
        assert_eq!(sum, 2 * g.num_edges());
        assert!(g.max_degree() < g.num_vertices());
    }
}
