//! The conflict graph over demand instances.
//!
//! Two demand instances conflict when they belong to the same demand or
//! when they overlap on the same network (Section 2). The MIS computations
//! of the distributed algorithm (Section 5) are performed on (induced
//! subgraphs of) this graph: "the demand instances participating in the MIS
//! computation form the vertices and an edge is drawn between a pair of
//! vertices, if they are conflicting".
//!
//! Construction is a sort-based **interval sweep** over the implicit
//! interval runs of every path (no hash maps, no per-edge buckets): runs on
//! the same network are sorted by start and swept left to right, emitting
//! one candidate pair per *overlapping run pair* — for line instances
//! exactly once per conflicting pair, for tree paths at most once per pair
//! of intersecting runs (`O(log² n)`), versus once per shared edge in the
//! old bucket construction. The adjacency is stored as a CSR (flat
//! `offsets` / `neighbors`) with each neighbor list sorted ascending, so
//! the graph is byte-for-byte deterministic across runs and platforms.
//!
//! # Sharded construction
//!
//! Overlap edges never cross networks, so the sweep decomposes perfectly
//! along the shards of a [`ShardedUniverse`]: [`ShardedConflictGraph`]
//! builds one local CSR per shard (sweep, sort and CSR assembly all inside
//! the shard task, driven shard-parallel through rayon) and keeps the only
//! cross-shard edges — same-demand cliques spanning networks — in a
//! compact global cross-shard CSR. [`ShardedConflictGraph::merged`] folds
//! the per-shard CSRs and the cross adjacency back into a single
//! [`ConflictGraph`] that is **byte-identical** to what the
//! single-threaded [`ConflictGraph::build`] produces, at any thread count
//! (the per-shard pair sets are disjoint and deterministic, so the merge
//! is a permutation-free set union).

use netsched_graph::{
    DemandInstanceUniverse, InstanceId, NetworkId, ShardedUniverse, UniverseDelta, UniverseShard,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The conflict graph of a demand-instance universe, in CSR form.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// `neighbors[offsets[v] .. offsets[v + 1]]` are the conflicts of `v`,
    /// sorted ascending.
    offsets: Vec<u32>,
    neighbors: Vec<InstanceId>,
    num_edges: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of the whole universe.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        let n = universe.num_instances();
        // Candidate conflicting pairs, normalized to (low, high). Duplicates
        // (tree paths intersecting on several runs, overlap + same demand)
        // are removed by the sort/dedup below.
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        // Same-demand cliques.
        for a in 0..universe.num_demands() {
            let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    pairs.push(ordered(d1, d2));
                }
            }
        }

        // Shared-edge conflicts via a per-network interval sweep. Runs are
        // sorted by start; every run still active when a later run begins
        // overlaps it.
        for t in 0..universe.num_networks() {
            let network = netsched_graph::NetworkId::new(t);
            let mut runs: Vec<(u32, u32, u32)> = Vec::new(); // (start, end, instance)
            for &d in universe.instances_on_network(network) {
                for run in universe.instance(d).path.runs() {
                    runs.push((run.start, run.end, d.index() as u32));
                }
            }
            runs.sort_unstable();
            let mut active: Vec<(u32, u32)> = Vec::new(); // (end, instance)
            for &(start, end, inst) in &runs {
                active.retain(|&(e, _)| e >= start);
                for &(_, other) in &active {
                    if other != inst {
                        pairs.push(if other < inst {
                            (other, inst)
                        } else {
                            (inst, other)
                        });
                    }
                }
                active.push((end, inst));
            }
        }

        pairs.sort_unstable();
        pairs.dedup();
        assemble_csr(n, &pairs)
    }

    /// Number of vertices (demand instances).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of conflict edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The instances conflicting with `d`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, d: InstanceId) -> &[InstanceId] {
        &self.neighbors[self.offsets[d.index()] as usize..self.offsets[d.index() + 1] as usize]
    }

    /// Degree of `d` in the conflict graph.
    #[inline]
    pub fn degree(&self, d: InstanceId) -> usize {
        (self.offsets[d.index() + 1] - self.offsets[d.index()]) as usize
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(InstanceId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `a` and `b` conflict.
    pub fn are_conflicting(&self, a: InstanceId, b: InstanceId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Checks that a vertex subset is independent in the conflict graph.
    pub fn is_independent(&self, set: &[InstanceId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || self.are_conflicting(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[inline]
fn ordered(a: InstanceId, b: InstanceId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Assembles a CSR **into** caller-provided buffers from sorted,
/// deduplicated `(low, high)` pairs — the allocation-reusing core shared
/// by every CSR assembly in this module. The output is fully determined by
/// the pair *set*, which is what makes the sharded merge and the
/// incremental splice byte-identical to the single-threaded build.
/// `cursor` is scratch (cleared and refilled); `offsets`/`neighbors` are
/// cleared and rebuilt in place, so steady-state callers allocate nothing
/// once capacities have warmed up.
fn assemble_csr_into(
    n: usize,
    pairs: &[(u32, u32)],
    offsets: &mut Vec<u32>,
    neighbors: &mut Vec<u32>,
    cursor: &mut Vec<u32>,
) {
    offsets.clear();
    offsets.resize(n + 1, 0);
    for &(a, b) in pairs {
        offsets[a as usize + 1] += 1;
        offsets[b as usize + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    cursor.clear();
    cursor.extend_from_slice(&offsets[..n]);
    neighbors.clear();
    neighbors.resize(2 * pairs.len(), 0);
    for &(a, b) in pairs {
        neighbors[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        neighbors[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }
    for v in 0..n {
        neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
    }
}

/// [`assemble_csr_into`] with fresh buffers, for the from-scratch builds.
fn assemble_csr_arrays(n: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = Vec::new();
    let mut neighbors = Vec::new();
    let mut cursor = Vec::new();
    assemble_csr_into(n, pairs, &mut offsets, &mut neighbors, &mut cursor);
    (offsets, neighbors)
}

/// [`assemble_csr_arrays`] wrapped into a [`ConflictGraph`].
fn assemble_csr(n: usize, pairs: &[(u32, u32)]) -> ConflictGraph {
    let (offsets, neighbors) = assemble_csr_arrays(n, pairs);
    ConflictGraph {
        offsets,
        neighbors: neighbors.into_iter().map(InstanceId).collect(),
        num_edges: pairs.len(),
    }
}

/// The conflict edges local to one shard (overlaps plus same-demand pairs
/// on the shard's network), as a CSR over the shard's *local* instance ids.
#[derive(Debug, Clone)]
pub struct ShardConflict {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    num_edges: usize,
}

impl Default for ShardConflict {
    /// A valid zero-vertex CSR; the placeholder the splice path swaps in
    /// while a shard's real CSR is being rebuilt on a worker.
    fn default() -> Self {
        Self {
            offsets: vec![0],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }
}

impl ShardConflict {
    /// Builds the local CSR from sorted, deduplicated local pairs.
    fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        let (offsets, neighbors) = assemble_csr_arrays(n, pairs);
        Self {
            offsets,
            neighbors,
            num_edges: pairs.len(),
        }
    }

    /// Rebuilds the CSR in place from sorted, deduplicated local pairs,
    /// reusing the existing buffers (and `cursor` as scratch).
    fn rebuild(&mut self, n: usize, pairs: &[(u32, u32)], cursor: &mut Vec<u32>) {
        assemble_csr_into(n, pairs, &mut self.offsets, &mut self.neighbors, cursor);
        self.num_edges = pairs.len();
    }

    /// Number of local vertices (instances of the shard).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of conflict edges local to the shard.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The local ids conflicting with local vertex `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of local vertex `v` within the shard.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }
}

/// Routes every **same-network** same-demand clique pair of the universe
/// to its owning shard's local list (as ascending local ids — locals
/// follow global order within a shard). Pairs spanning networks live in
/// the stable-id [`CrossGroups`] arena instead. Used by the from-scratch
/// construction only; the incremental splice derives a dirty shard's new
/// same-demand pairs from its arrival suffix.
fn route_demand_cliques(
    universe: &DemandInstanceUniverse,
    sharding: &ShardedUniverse,
) -> Vec<Vec<(u32, u32)>> {
    let mut demand_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); sharding.num_shards()];
    for a in 0..universe.num_demands() {
        let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
        for (i, &d1) in group.iter().enumerate() {
            for &d2 in &group[i + 1..] {
                let (t1, t2) = (sharding.shard_of(d1), sharding.shard_of(d2));
                if t1 == t2 {
                    demand_pairs[t1.index()].push((sharding.local_of(d1), sharding.local_of(d2)));
                }
            }
        }
    }
    demand_pairs
}

/// Reusable per-shard scratch of the incremental local-CSR splice; every
/// buffer is cleared and refilled in place, so steady-state dirty epochs
/// allocate nothing once capacities have warmed up.
#[derive(Debug, Clone, Default)]
struct SpliceScratch {
    /// Surviving old pairs, renumbered through the local remap (sorted by
    /// construction: the remap is monotone).
    spliced: Vec<(u32, u32)>,
    /// Pairs with at least one arrival endpoint (sorted + deduped here).
    fresh: Vec<(u32, u32)>,
    /// Interval-sweep active lists: `(end, local)` of still-open survivor
    /// and arrival runs.
    active_old: Vec<(u32, u32)>,
    active_new: Vec<(u32, u32)>,
    /// The merged pair list the CSR is assembled from.
    merged: Vec<(u32, u32)>,
    /// CSR assembly cursor scratch.
    cursor: Vec<u32>,
}

/// Splices one dirty shard's local CSR through a [`ShardSplice`] instead
/// of re-sweeping the shard from scratch:
///
/// 1. surviving pairs are carried over from the old CSR, renumbered
///    through the (monotone) local remap — already sorted, no sort paid;
/// 2. pairs involving an arrival are found by one interval sweep over the
///    shard's (already merged) run array that only ever emits
///    survivor×arrival and arrival×arrival overlaps, plus the same-demand
///    cliques among the arrival suffix — only these `O(batch)`-driven
///    pairs are sorted;
/// 3. the two disjoint sorted lists merge into the rebuilt CSR.
///
/// The resulting pair set equals the full re-sweep's exactly (survivor
/// pairs persist if and only if both endpoints survive, and every other
/// pair has at least one arrival endpoint), and the CSR assembly is a pure
/// function of the sorted pair set — so the output is byte-identical to
/// [`sweep_shard`] at any thread count.
fn splice_shard(
    universe: &DemandInstanceUniverse,
    shard: &UniverseShard,
    splice: &netsched_graph::ShardSplice,
    csr: &mut ShardConflict,
    scratch: &mut SpliceScratch,
) {
    let remap = splice.local_remap();
    let first_new = splice.first_new_local();

    // 1. Carry the surviving old pairs through the local remap.
    scratch.spliced.clear();
    for v in 0..csr.num_vertices() as u32 {
        let v_new = remap[v as usize];
        if v_new == u32::MAX {
            continue;
        }
        for &u in csr.neighbors(v) {
            if u <= v {
                continue;
            }
            let u_new = remap[u as usize];
            if u_new != u32::MAX {
                scratch.spliced.push((v_new, u_new));
            }
        }
    }
    debug_assert!(scratch.spliced.windows(2).all(|w| w[0] < w[1]));

    // 2a. Overlap pairs with at least one arrival endpoint: one sweep over
    // the merged run array, pairing arrival runs against everything active
    // and survivor runs against active arrivals only.
    scratch.fresh.clear();
    scratch.active_old.clear();
    scratch.active_new.clear();
    for run in shard.runs() {
        scratch.active_old.retain(|&(e, _)| e >= run.start);
        scratch.active_new.retain(|&(e, _)| e >= run.start);
        if run.local >= first_new {
            for &(_, other) in &scratch.active_old {
                scratch.fresh.push((other, run.local));
            }
            for &(_, other) in &scratch.active_new {
                if other != run.local {
                    scratch.fresh.push(if other < run.local {
                        (other, run.local)
                    } else {
                        (run.local, other)
                    });
                }
            }
            scratch.active_new.push((run.end, run.local));
        } else {
            for &(_, other) in &scratch.active_new {
                scratch.fresh.push((run.local, other));
            }
            scratch.active_old.push((run.end, run.local));
        }
    }

    // 2b. Same-demand cliques among the arrival suffix (demands arrive
    // whole, so a survivor never shares a demand with an arrival; and the
    // suffix is grouped by demand because instance ids are demand-dense).
    let globals = shard.globals();
    let mut i = first_new as usize;
    while i < globals.len() {
        let demand = universe.demand_of(globals[i]);
        let mut j = i + 1;
        while j < globals.len() && universe.demand_of(globals[j]) == demand {
            j += 1;
        }
        for x in i..j {
            for y in x + 1..j {
                scratch.fresh.push((x as u32, y as u32));
            }
        }
        i = j;
    }
    scratch.fresh.sort_unstable();
    scratch.fresh.dedup();

    // 3. Merge the two disjoint sorted pair lists and assemble.
    scratch.merged.clear();
    scratch
        .merged
        .reserve(scratch.spliced.len() + scratch.fresh.len());
    let (mut a, mut b) = (0, 0);
    while a < scratch.spliced.len() && b < scratch.fresh.len() {
        if scratch.spliced[a] <= scratch.fresh[b] {
            scratch.merged.push(scratch.spliced[a]);
            a += 1;
        } else {
            scratch.merged.push(scratch.fresh[b]);
            b += 1;
        }
    }
    scratch.merged.extend_from_slice(&scratch.spliced[a..]);
    scratch.merged.extend_from_slice(&scratch.fresh[b..]);
    csr.rebuild(shard.len(), &scratch.merged, &mut scratch.cursor);
}

/// One shard's local CSR from its (pre-sorted) run array plus the local
/// same-demand pairs routed to it. This is the complete per-shard build —
/// interval sweep, sort, dedup, CSR assembly — shared verbatim by the
/// from-scratch construction ([`ShardedConflictGraph::build_with`]) and the
/// dirty-shard rebuild ([`ShardedConflictGraph::apply_delta`]), so the two
/// paths cannot drift apart.
fn sweep_shard(shard: &UniverseShard, mut pairs: Vec<(u32, u32)>) -> ShardConflict {
    let mut active: Vec<(u32, u32)> = Vec::new(); // (end, local)
    for run in shard.runs() {
        active.retain(|&(e, _)| e >= run.start);
        for &(_, other) in &active {
            if other != run.local {
                pairs.push(if other < run.local {
                    (other, run.local)
                } else {
                    (run.local, other)
                });
            }
        }
        active.push((run.end, run.local));
    }
    pairs.sort_unstable();
    pairs.dedup();
    ShardConflict::from_pairs(shard.len(), &pairs)
}

/// The cross-shard same-demand cliques under **stable group indirection**:
/// one "group" per demand whose instances span more than one network,
/// holding the demand's full (ascending) instance-id member list in a flat
/// SoA arena. A splice renumbers the member columns **in place** through
/// the delta's instance remap (monotone on survivors, so member lists stay
/// ascending), drops the groups of expired demands by forward compaction,
/// and appends groups for the arrivals — `O(members + arrivals)` with no
/// sort and no CSR assembly, where the former representation re-assembled
/// a global CSR over every live demand each epoch.
#[derive(Debug, Clone, Default)]
struct CrossGroups {
    /// Group → `[start, end)` range into the member columns
    /// (`len == num_groups + 1`, `offsets[0] == 0`).
    offsets: Vec<u32>,
    /// Member instance ids, ascending within each group.
    members: Vec<InstanceId>,
    /// Per member slot: how many of its group's members live on a
    /// *different* network (its cross degree; static over the demand's
    /// lifetime, computed once at group creation).
    member_degree: Vec<u32>,
    /// Instance → owning group (`u32::MAX` = no cross edges).
    group_of: Vec<u32>,
    /// Instance → cross degree (dense mirror of `member_degree`).
    cross_degree: Vec<u32>,
    /// Total cross pairs (Σ member_degree / 2).
    num_edges: usize,
}

impl CrossGroups {
    /// Rebuilds the arena from scratch over a universe (the wholesale
    /// assembly the splice path avoids; counted by `cross_assemblies`).
    fn rebuild(&mut self, universe: &DemandInstanceUniverse) {
        self.offsets.clear();
        self.offsets.push(0);
        self.members.clear();
        self.member_degree.clear();
        for a in 0..universe.num_demands() {
            let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
            self.push_group(universe, group);
        }
        self.rebuild_index(universe.num_instances());
    }

    /// Appends one demand's group (if it spans networks) and its member
    /// degrees; returns without touching the arena otherwise.
    fn push_group(&mut self, universe: &DemandInstanceUniverse, group: &[InstanceId]) {
        if group.len() < 2 {
            return;
        }
        let first_net = universe.instance(group[0]).network;
        if group
            .iter()
            .all(|&d| universe.instance(d).network == first_net)
        {
            return;
        }
        debug_assert!(group.windows(2).all(|w| w[0] < w[1]));
        self.members.extend_from_slice(group);
        for &d in group {
            let net = universe.instance(d).network;
            let same = group
                .iter()
                .filter(|&&m| universe.instance(m).network == net)
                .count() as u32;
            self.member_degree.push(group.len() as u32 - same);
        }
        self.offsets.push(self.members.len() as u32);
    }

    /// Refills the dense per-instance index columns from the group arena
    /// (`O(n + members)`, allocation-free at steady capacity).
    fn rebuild_index(&mut self, n: usize) {
        self.group_of.clear();
        self.group_of.resize(n, u32::MAX);
        self.cross_degree.clear();
        self.cross_degree.resize(n, 0);
        let mut edges = 0usize;
        for g in 0..self.offsets.len() - 1 {
            let (s, e) = (self.offsets[g] as usize, self.offsets[g + 1] as usize);
            for i in s..e {
                let d = self.members[i];
                self.group_of[d.index()] = g as u32;
                self.cross_degree[d.index()] = self.member_degree[i];
                edges += self.member_degree[i] as usize;
            }
        }
        self.num_edges = edges / 2;
    }

    /// Splices a universe delta through the arena: dead groups (expired
    /// demands) compact away, surviving member ids renumber in place, and
    /// the arrivals' groups append — no sort, no wholesale re-assembly.
    fn splice(&mut self, universe: &DemandInstanceUniverse, delta: &UniverseDelta) {
        let remap = delta.instance_remap();
        let groups = self.offsets.len() - 1;
        let (mut gw, mut mw) = (0usize, 0usize);
        for g in 0..groups {
            let (s, e) = (self.offsets[g] as usize, self.offsets[g + 1] as usize);
            if remap[self.members[s].index()] == u32::MAX {
                // Demands expire whole: the first member's fate is the
                // group's.
                debug_assert!(self.members[s..e]
                    .iter()
                    .all(|m| remap[m.index()] == u32::MAX));
                continue;
            }
            self.offsets[gw] = mw as u32;
            for i in s..e {
                self.members[mw] = InstanceId(remap[self.members[i].index()]);
                self.member_degree[mw] = self.member_degree[i];
                mw += 1;
            }
            gw += 1;
        }
        self.offsets[gw] = mw as u32;
        self.offsets.truncate(gw + 1);
        self.members.truncate(mw);
        self.member_degree.truncate(mw);

        // Arrivals: the new-instance suffix, grouped by (dense) demand id.
        let n = universe.num_instances();
        let mut i = delta.first_added();
        while i < n {
            let demand = universe.demand_of(InstanceId::new(i));
            let group = universe.instances_of_demand(demand);
            debug_assert_eq!(group.first(), Some(&InstanceId::new(i)));
            self.push_group(universe, group);
            i += group.len();
        }
        self.rebuild_index(n);
    }

    /// The cross-group member row of an instance (its own id included),
    /// empty when the instance has no cross edges.
    #[inline]
    fn row(&self, d: InstanceId) -> &[InstanceId] {
        match self.group_of[d.index()] {
            u32::MAX => &[],
            g => {
                &self.members
                    [self.offsets[g as usize] as usize..self.offsets[g as usize + 1] as usize]
            }
        }
    }

    /// Heap bytes committed by the arena and its index columns.
    fn committed_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.members.capacity() * std::mem::size_of::<InstanceId>()
            + (self.member_degree.capacity()
                + self.group_of.capacity()
                + self.cross_degree.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// Iterator over the cross-shard same-demand neighbors of one instance:
/// its group's members on *other* networks, in ascending global id order.
pub struct CrossNeighbors<'a> {
    members: std::slice::Iter<'a, InstanceId>,
    sharding: &'a ShardedUniverse,
    network: NetworkId,
}

impl Iterator for CrossNeighbors<'_> {
    type Item = InstanceId;

    #[inline]
    fn next(&mut self) -> Option<InstanceId> {
        self.members
            .by_ref()
            .find(|&&m| self.sharding.shard_of(m) != self.network)
            .copied()
    }
}

/// The conflict graph in sharded form: one local CSR per network plus the
/// stable-id [`CrossGroups`] arena holding the same-demand cliques that
/// span networks (the only conflict edges that ever cross a shard
/// boundary).
///
/// The graph is *mutable over time*: [`ShardedConflictGraph::apply_delta`]
/// re-synchronizes it with a universe splice by splicing only the dirty
/// shards' local CSRs (through the sharding's [`ShardSplice`] records —
/// no re-sweep) and renumbering the cross-group arena in place, bumping a
/// generation counter that also keys the cached
/// [`merged`](ShardedConflictGraph::merged) fold.
#[derive(Debug)]
pub struct ShardedConflictGraph {
    sharding: ShardedUniverse,
    shards: Vec<ShardConflict>,
    /// Cross-shard same-demand cliques under stable group indirection.
    cross: CrossGroups,
    /// Reusable per-shard splice scratch, indexed by shard.
    splice_scratch: Vec<SpliceScratch>,
    /// Bumped by every [`ShardedConflictGraph::apply_delta`]; keys the
    /// merged-fold cache.
    generation: u64,
    /// Cached result of [`ShardedConflictGraph::merged`] for `generation`.
    merged_cache: Mutex<Option<(u64, ConflictGraph)>>,
    /// How many times the merged fold actually ran (tests pin the caching).
    merged_folds: AtomicU64,
    /// How many times the cross-group arena was assembled wholesale from
    /// the universe (tests pin that splices never do this).
    cross_assemblies: AtomicU64,
}

impl Clone for ShardedConflictGraph {
    fn clone(&self) -> Self {
        Self {
            sharding: self.sharding.clone(),
            shards: self.shards.clone(),
            cross: self.cross.clone(),
            splice_scratch: self.splice_scratch.clone(),
            generation: self.generation,
            merged_cache: Mutex::new(self.merged_cache.lock().unwrap().clone()),
            merged_folds: AtomicU64::new(self.merged_folds.load(Ordering::Relaxed)),
            cross_assemblies: AtomicU64::new(self.cross_assemblies.load(Ordering::Relaxed)),
        }
    }
}

impl ShardedConflictGraph {
    /// Builds the sharded conflict graph of a universe, partitioning it by
    /// network first.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        Self::build_with(universe, ShardedUniverse::build(universe))
    }

    /// Builds the sharded conflict graph on an existing partition.
    ///
    /// The per-shard interval sweeps (and their sorts and CSR assemblies)
    /// run shard-parallel through rayon; the same-demand cliques are split
    /// serially beforehand into per-shard and cross-shard pair lists
    /// (`O(Σ |Inst(a)|²)`, the size of the cliques themselves).
    pub fn build_with(universe: &DemandInstanceUniverse, sharding: ShardedUniverse) -> Self {
        // Same-demand cliques on a single network, routed to the owning
        // shard; spanning cliques live in the cross-group arena.
        let demand_pairs = route_demand_cliques(universe, &sharding);

        // One task per shard: interval sweep + same-demand pairs → local CSR.
        let work: Vec<(usize, Vec<(u32, u32)>)> = demand_pairs.into_iter().enumerate().collect();
        let sharding_ref = &sharding;
        let shards: Vec<ShardConflict> = work
            .into_par_iter()
            .map(move |(t, pairs)| sweep_shard(&sharding_ref.shards()[t], pairs))
            .collect();

        let mut cross = CrossGroups::default();
        cross.rebuild(universe);

        let num_shards = sharding.num_shards();
        Self {
            sharding,
            shards,
            cross,
            splice_scratch: vec![SpliceScratch::default(); num_shards],
            generation: 0,
            merged_cache: Mutex::new(None),
            merged_folds: AtomicU64::new(0),
            cross_assemblies: AtomicU64::new(1),
        }
    }

    /// Re-synchronizes the graph with a universe splice
    /// ([`DemandInstanceUniverse::apply_demand_delta`]): the owned
    /// [`ShardedUniverse`] is spliced in place, the local CSRs of the
    /// delta's **dirty** shards are spliced through the sharding's
    /// [`ShardSplice`](netsched_graph::ShardSplice) records (surviving
    /// pairs carry over renumbered, only arrival-driven pairs are swept
    /// and sorted — see [`splice_shard`]; driven shard-parallel through
    /// rayon), clean shards are kept untouched, and the cross-group arena
    /// renumbers its member columns in place — **no wholesale cross
    /// re-assembly and no `O(|D|)` demand iteration**.
    ///
    /// Cost: `O(cross members + Σ_dirty (runs + pairs))`, with sort work
    /// proportional to the arrival batch only. The result is byte-identical
    /// to `ShardedConflictGraph::build(universe)`.
    ///
    /// Bumps the [`generation`](ShardedConflictGraph::generation) counter,
    /// invalidating the cached [`merged`](ShardedConflictGraph::merged)
    /// fold.
    pub fn apply_delta(&mut self, universe: &DemandInstanceUniverse, delta: &UniverseDelta) {
        self.sharding.apply_delta(universe, delta);
        self.splice_scratch
            .resize_with(self.shards.len(), SpliceScratch::default);

        let dirty = delta.dirty();
        let dirty_shards: Vec<usize> = (0..self.shards.len()).filter(|&t| dirty[t]).collect();
        if dirty_shards.len() <= 1 || rayon::current_num_threads() <= 1 {
            // Serial splice in place (the common focused-churn shape).
            for t in dirty_shards {
                let network = NetworkId::new(t);
                splice_shard(
                    universe,
                    self.sharding.shard(network),
                    self.sharding.shard_splice(network),
                    &mut self.shards[t],
                    &mut self.splice_scratch[t],
                );
            }
        } else {
            // Shard-parallel: move each dirty shard's CSR + scratch into a
            // work list, splice on workers, move back.
            let work: Vec<(usize, ShardConflict, SpliceScratch)> = dirty_shards
                .into_iter()
                .map(|t| {
                    (
                        t,
                        std::mem::take(&mut self.shards[t]),
                        std::mem::take(&mut self.splice_scratch[t]),
                    )
                })
                .collect();
            let sharding_ref = &self.sharding;
            let spliced: Vec<(usize, ShardConflict, SpliceScratch)> = work
                .into_par_iter()
                .map(move |(t, mut csr, mut scratch)| {
                    let network = NetworkId::new(t);
                    splice_shard(
                        universe,
                        sharding_ref.shard(network),
                        sharding_ref.shard_splice(network),
                        &mut csr,
                        &mut scratch,
                    );
                    (t, csr, scratch)
                })
                .collect();
            for (t, csr, scratch) in spliced {
                self.shards[t] = csr;
                self.splice_scratch[t] = scratch;
            }
        }

        self.cross.splice(universe, delta);
        self.generation += 1;
    }

    /// The current generation: 0 after a from-scratch build, bumped by
    /// every [`ShardedConflictGraph::apply_delta`].
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many times the merged fold has actually run (as opposed to being
    /// served from the generation-keyed cache).
    #[inline]
    pub fn merged_fold_count(&self) -> u64 {
        self.merged_folds.load(Ordering::Relaxed)
    }

    /// Advances the generation counter to at least `to` and drops the
    /// cached merged fold.
    ///
    /// A graph rebuilt from a **restored** session snapshot starts over at
    /// generation 0, so any external cache keyed by
    /// [`generation`](ShardedConflictGraph::generation) (including the
    /// internal merged-fold cache of a state that outlived the rebuild)
    /// could serve a pre-crash fold for a post-restore graph. The restore
    /// path calls this with the recovered epoch counter, re-establishing
    /// the invariant that generations never repeat across the lifetime of
    /// a logical session.
    pub fn advance_generation(&mut self, to: u64) {
        self.generation = self.generation.max(to);
        *self.merged_cache.lock().expect("merged cache poisoned") = None;
    }

    /// The universe partition the graph was built on.
    #[inline]
    pub fn sharding(&self) -> &ShardedUniverse {
        &self.sharding
    }

    /// Number of shards (== networks).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices (demand instances).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.sharding.num_instances()
    }

    /// Total number of conflict edges (local plus cross-shard).
    pub fn num_edges(&self) -> usize {
        self.shards
            .iter()
            .map(ShardConflict::num_edges)
            .sum::<usize>()
            + self.cross.num_edges
    }

    /// The local CSR of one shard.
    #[inline]
    pub fn shard(&self, t: NetworkId) -> &ShardConflict {
        &self.shards[t.index()]
    }

    /// All per-shard CSRs, indexed by network.
    #[inline]
    pub fn shards(&self) -> &[ShardConflict] {
        &self.shards
    }

    /// The cross-shard same-demand neighbors of a global instance, in
    /// ascending id order (an iterator over the instance's stable cross
    /// group, skipping same-network members).
    #[inline]
    pub fn cross_neighbors(&self, d: InstanceId) -> CrossNeighbors<'_> {
        CrossNeighbors {
            members: self.cross.row(d).iter(),
            sharding: &self.sharding,
            network: self.sharding.shard_of(d),
        }
    }

    /// Degree of a global instance in the full conflict graph.
    #[inline]
    pub fn degree(&self, d: InstanceId) -> usize {
        self.shards[self.sharding.shard_of(d).index()].degree(self.sharding.local_of(d))
            + self.cross.cross_degree[d.index()] as usize
    }

    /// How many times the cross-group arena was assembled wholesale from
    /// the universe (1 after a build; splices must never bump this — the
    /// arena renumbers in place).
    #[inline]
    pub fn cross_assembly_count(&self) -> u64 {
        self.cross_assemblies.load(Ordering::Relaxed)
    }

    /// Heap bytes committed by the sharded graph: the sharding index, the
    /// per-shard CSRs, the cross-group arena and the splice scratch.
    pub fn committed_bytes(&self) -> usize {
        let mut bytes = self.sharding.committed_bytes() + self.cross.committed_bytes();
        for shard in &self.shards {
            bytes += shard.offsets.capacity() * std::mem::size_of::<u32>();
            bytes += shard.neighbors.capacity() * std::mem::size_of::<u32>();
        }
        bytes += self.shards.capacity() * std::mem::size_of::<ShardConflict>();
        for scratch in &self.splice_scratch {
            bytes += (scratch.spliced.capacity()
                + scratch.fresh.capacity()
                + scratch.active_old.capacity()
                + scratch.active_new.capacity()
                + scratch.merged.capacity())
                * std::mem::size_of::<(u32, u32)>();
            bytes += scratch.cursor.capacity() * std::mem::size_of::<u32>();
        }
        bytes += self.splice_scratch.capacity() * std::mem::size_of::<SpliceScratch>();
        bytes
    }

    /// Folds the per-shard CSRs and the cross-shard adjacency into a single
    /// global [`ConflictGraph`].
    ///
    /// The result is byte-identical to [`ConflictGraph::build`] on the same
    /// universe, at any thread count: local pair sets are per-shard
    /// deterministic and disjoint across shards, cross pairs are disjoint
    /// from both, and [`assemble_csr`] is a pure function of the sorted
    /// pair set.
    ///
    /// The fold is cached behind the graph's generation counter: repeated
    /// calls between mutations return a clone of the cached CSR (one
    /// `memcpy`-class copy) instead of re-folding, and
    /// [`ShardedConflictGraph::apply_delta`] invalidates the cache by
    /// bumping the generation.
    pub fn merged(&self) -> ConflictGraph {
        let mut cache = self.merged_cache.lock().expect("merged cache poisoned");
        if let Some((generation, graph)) = cache.as_ref() {
            if *generation == self.generation {
                return graph.clone();
            }
        }
        let graph = self.fold_merged();
        self.merged_folds.fetch_add(1, Ordering::Relaxed);
        *cache = Some((self.generation, graph.clone()));
        graph
    }

    /// The uncached merged fold behind [`ShardedConflictGraph::merged`].
    fn fold_merged(&self) -> ConflictGraph {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let shard_pairs: Vec<Vec<(u32, u32)>> = (0..self.shards.len())
            .into_par_iter()
            .map(|t| {
                let shard = &self.shards[t];
                let globals = self.sharding.shards()[t].globals();
                let mut out = Vec::with_capacity(shard.num_edges());
                for v in 0..shard.num_vertices() as u32 {
                    let g = globals[v as usize].0;
                    for &u in shard.neighbors(v) {
                        if u > v {
                            out.push((g, globals[u as usize].0));
                        }
                    }
                }
                out
            })
            .collect();
        for sp in shard_pairs {
            pairs.extend(sp);
        }
        for g in 0..self.cross.offsets.len() - 1 {
            let (s, e) = (
                self.cross.offsets[g] as usize,
                self.cross.offsets[g + 1] as usize,
            );
            let members = &self.cross.members[s..e];
            for (i, &d1) in members.iter().enumerate() {
                for &d2 in &members[i + 1..] {
                    if self.sharding.shard_of(d1) != self.sharding.shard_of(d2) {
                        pairs.push((d1.0, d2.0));
                    }
                }
            }
        }
        pairs.sort_unstable();
        assemble_csr(self.num_vertices(), &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};

    #[test]
    fn conflict_graph_matches_universe_predicate() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let g = ConflictGraph::build(&universe);
            assert_eq!(g.num_vertices(), universe.num_instances());
            for a in universe.instance_ids() {
                for b in universe.instance_ids() {
                    if a == b {
                        continue;
                    }
                    assert_eq!(
                        g.are_conflicting(a, b),
                        universe.conflicting(a, b),
                        "mismatch for {a}, {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_conflict_counts() {
        let u = figure1_line_problem().universe();
        let g = ConflictGraph::build(&u);
        // A–B overlap; B–C and A–C do not.
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(InstanceId::new(0)), 1);
        assert_eq!(g.degree(InstanceId::new(2)), 0);
        assert!(g.is_independent(&[InstanceId::new(0), InstanceId::new(2)]));
        assert!(!g.is_independent(&[InstanceId::new(0), InstanceId::new(1)]));
    }

    #[test]
    fn same_demand_instances_are_adjacent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let insts = u.instances_of_demand(netsched_graph::DemandId::new(0));
        assert_eq!(insts.len(), 2);
        assert!(g.are_conflicting(insts[0], insts[1]));
    }

    #[test]
    fn degrees_and_max_degree_are_consistent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let sum: usize = (0..g.num_vertices())
            .map(|i| g.degree(InstanceId::new(i)))
            .sum();
        assert_eq!(sum, 2 * g.num_edges());
        assert!(g.max_degree() < g.num_vertices());
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_the_flat_build() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let flat = ConflictGraph::build(&universe);
            let sharded = ShardedConflictGraph::build(&universe);
            let merged = sharded.merged();
            assert_eq!(flat.offsets, merged.offsets);
            assert_eq!(flat.neighbors, merged.neighbors);
            assert_eq!(flat.num_edges(), merged.num_edges());
            assert_eq!(flat.num_edges(), sharded.num_edges());
            for d in universe.instance_ids() {
                assert_eq!(sharded.degree(d), flat.degree(d), "degree of {d}");
            }
        }
    }

    #[test]
    fn cross_adjacency_holds_exactly_the_spanning_same_demand_cliques() {
        let u = two_tree_problem().universe();
        let sharded = ShardedConflictGraph::build(&u);
        for a in u.instance_ids() {
            for b in sharded.cross_neighbors(a) {
                assert_eq!(u.demand_of(a), u.demand_of(b));
                assert_ne!(u.instance(a).network, u.instance(b).network);
            }
            // Rows are ascending (MIS tie-breaking relies on it).
            let row: Vec<InstanceId> = sharded.cross_neighbors(a).collect();
            assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
        // Every cross-network same-demand pair appears.
        for a in u.instance_ids() {
            for b in u.instance_ids() {
                if a != b
                    && u.demand_of(a) == u.demand_of(b)
                    && u.instance(a).network != u.instance(b).network
                {
                    assert!(sharded.cross_neighbors(a).any(|x| x == b));
                }
            }
        }
    }

    #[test]
    fn shard_csr_matches_the_universe_predicate_locally() {
        let u = figure6_problem().universe();
        let sharded = ShardedConflictGraph::build(&u);
        for (t, shard) in sharded.shards().iter().enumerate() {
            let network = netsched_graph::NetworkId::new(t);
            let part = sharded.sharding().shard(network);
            for v in 0..shard.num_vertices() as u32 {
                let dv = part.global_of(v);
                for &w in shard.neighbors(v) {
                    assert!(u.conflicting(dv, part.global_of(w)));
                }
            }
        }
    }

    #[test]
    fn apply_delta_is_byte_identical_to_a_from_scratch_build() {
        use netsched_graph::{ArrivingDemand, DemandId, TreeProblem, UniverseDelta, VertexId};

        let mut p = TreeProblem::new(8);
        let line: Vec<(VertexId, VertexId)> = (0..7)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        let t0 = p.add_network(line.clone()).unwrap();
        let t1 = p.add_network(line.clone()).unwrap();
        let t2 = p.add_network(line).unwrap();
        p.add_unit_demand(VertexId(0), VertexId(4), 1.0, vec![t0, t1])
            .unwrap();
        p.add_unit_demand(VertexId(2), VertexId(6), 2.0, vec![t0])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(3), 3.0, vec![t1, t2])
            .unwrap();
        p.add_unit_demand(VertexId(5), VertexId(7), 4.0, vec![t2])
            .unwrap();
        let mut universe = p.universe();
        let mut incremental = ShardedConflictGraph::build(&universe);
        let mut delta = UniverseDelta::new();

        // Epoch 1: expire demand 1 (network 0), add a demand on networks
        // 0 and 2. Epoch 2: expire demand 0, empty arrivals.
        let batches: Vec<(Vec<DemandId>, Vec<ArrivingDemand>)> = vec![
            (
                vec![DemandId(1)],
                vec![ArrivingDemand {
                    profit: 9.0,
                    height: 1.0,
                    instances: vec![
                        (t0, p.network(t0).path_edges(VertexId(3), VertexId(6)), None),
                        (t2, p.network(t2).path_edges(VertexId(3), VertexId(6)), None),
                    ],
                }],
            ),
            (vec![DemandId(0)], vec![]),
        ];
        for (expired, arrivals) in batches {
            universe.apply_demand_delta(&expired, &arrivals, &mut delta);
            incremental.apply_delta(&universe, &delta);

            let fresh = ShardedConflictGraph::build(&universe);
            let flat = ConflictGraph::build(&universe);
            let merged = incremental.merged();
            assert_eq!(flat.offsets, merged.offsets);
            assert_eq!(flat.neighbors, merged.neighbors);
            assert_eq!(incremental.num_edges(), fresh.num_edges());
            for t in 0..incremental.num_shards() {
                let network = NetworkId::new(t);
                let (a, b) = (incremental.shard(network), fresh.shard(network));
                assert_eq!(a.num_vertices(), b.num_vertices(), "shard {t}");
                assert_eq!(a.num_edges(), b.num_edges(), "shard {t}");
                for v in 0..a.num_vertices() as u32 {
                    assert_eq!(a.neighbors(v), b.neighbors(v), "shard {t} vertex {v}");
                }
            }
            for d in universe.instance_ids() {
                assert_eq!(
                    incremental.cross_neighbors(d).collect::<Vec<_>>(),
                    fresh.cross_neighbors(d).collect::<Vec<_>>(),
                    "cross row of {d}"
                );
                assert_eq!(incremental.degree(d), flat.degree(d), "degree of {d}");
            }
        }
        assert_eq!(incremental.generation(), 2);
        assert_eq!(
            incremental.cross_assembly_count(),
            1,
            "splices must renumber the cross-group arena in place, never \
             re-assemble it from the universe"
        );
    }

    #[test]
    fn clean_shard_epochs_leave_local_csrs_and_cross_arena_untouched() {
        use netsched_graph::{ArrivingDemand, DemandId, TreeProblem, UniverseDelta, VertexId};

        // Networks 0 and 1; a spanning demand (cross group) plus a local
        // demand per network. Churn only network 0: shard 1 must keep its
        // CSR bytes, and the cross arena must splice without re-assembly.
        let mut p = TreeProblem::new(8);
        let line: Vec<(VertexId, VertexId)> = (0..7)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        let t0 = p.add_network(line.clone()).unwrap();
        let t1 = p.add_network(line).unwrap();
        p.add_unit_demand(VertexId(0), VertexId(4), 1.0, vec![t0, t1])
            .unwrap();
        p.add_unit_demand(VertexId(2), VertexId(6), 2.0, vec![t0])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(3), 3.0, vec![t1])
            .unwrap();
        let mut universe = p.universe();
        let mut graph = ShardedConflictGraph::build(&universe);
        assert_eq!(graph.cross_assembly_count(), 1);
        let mut delta = UniverseDelta::new();

        // Epoch 1: expire the network-0 local demand, arrive a replacement
        // on network 0 only. Shard 1 is clean.
        universe.apply_demand_delta(
            &[DemandId(1)],
            &[ArrivingDemand {
                profit: 4.0,
                height: 1.0,
                instances: vec![(t0, p.network(t0).path_edges(VertexId(3), VertexId(6)), None)],
            }],
            &mut delta,
        );
        assert_eq!(delta.dirty(), &[true, false]);
        let shard1_before = graph.shard(NetworkId::new(1)).clone();
        graph.apply_delta(&universe, &delta);

        // The clean shard's CSR is bit-for-bit untouched, and the cross
        // arena was spliced, not rebuilt.
        let shard1_after = graph.shard(NetworkId::new(1));
        assert_eq!(shard1_before.offsets, shard1_after.offsets);
        assert_eq!(shard1_before.neighbors, shard1_after.neighbors);
        assert_eq!(graph.cross_assembly_count(), 1);

        // And the result still matches a from-scratch build exactly.
        let fresh = ShardedConflictGraph::build(&universe);
        for d in universe.instance_ids() {
            assert_eq!(
                graph.cross_neighbors(d).collect::<Vec<_>>(),
                fresh.cross_neighbors(d).collect::<Vec<_>>()
            );
            assert_eq!(graph.degree(d), fresh.degree(d));
        }
    }

    #[test]
    fn merged_fold_is_cached_behind_the_generation_counter() {
        use netsched_graph::{DemandId, UniverseDelta};

        let mut universe = two_tree_problem().universe();
        let mut sharded = ShardedConflictGraph::build(&universe);
        assert_eq!(sharded.merged_fold_count(), 0);
        let a = sharded.merged();
        let b = sharded.merged();
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(
            sharded.merged_fold_count(),
            1,
            "second call must be served from the cache"
        );

        // A delta bumps the generation and invalidates the cache once.
        let mut delta = UniverseDelta::new();
        universe.apply_demand_delta(&[DemandId(0)], &[], &mut delta);
        sharded.apply_delta(&universe, &delta);
        assert_eq!(sharded.generation(), 1);
        let c = sharded.merged();
        let _ = sharded.merged();
        assert_eq!(sharded.merged_fold_count(), 2);
        assert_eq!(c.offsets, ConflictGraph::build(&universe).offsets);
    }

    #[test]
    fn advance_generation_invalidates_the_merged_cache() {
        let universe = two_tree_problem().universe();
        let mut sharded = ShardedConflictGraph::build(&universe);
        let _ = sharded.merged();
        assert_eq!(sharded.merged_fold_count(), 1);

        // A restore-style advance must both raise the counter and force
        // the next merged() to re-fold.
        sharded.advance_generation(17);
        assert_eq!(sharded.generation(), 17);
        let refolded = sharded.merged();
        assert_eq!(sharded.merged_fold_count(), 2);
        assert_eq!(refolded.offsets, ConflictGraph::build(&universe).offsets);

        // Advancing backwards never regresses the counter.
        sharded.advance_generation(3);
        assert_eq!(sharded.generation(), 17);
    }

    #[test]
    fn adjacency_is_sorted_and_deterministic() {
        // The interval sweep must produce identical, sorted adjacency on
        // every build — downstream MIS tie-breaking depends on it. (The old
        // bucket construction iterated a SipHash-seeded HashMap here.)
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let g1 = ConflictGraph::build(&universe);
            let g2 = ConflictGraph::build(&universe);
            assert_eq!(g1.offsets, g2.offsets);
            assert_eq!(g1.neighbors, g2.neighbors);
            for v in universe.instance_ids() {
                assert!(
                    g1.neighbors(v).windows(2).all(|w| w[0] < w[1]),
                    "adjacency of {v} must be strictly sorted"
                );
            }
        }
    }
}
