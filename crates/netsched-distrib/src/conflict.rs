//! The conflict graph over demand instances.
//!
//! Two demand instances conflict when they belong to the same demand or
//! when they overlap on the same network (Section 2). The MIS computations
//! of the distributed algorithm (Section 5) are performed on (induced
//! subgraphs of) this graph: "the demand instances participating in the MIS
//! computation form the vertices and an edge is drawn between a pair of
//! vertices, if they are conflicting".
//!
//! Construction is a sort-based **interval sweep** over the implicit
//! interval runs of every path (no hash maps, no per-edge buckets): runs on
//! the same network are sorted by start and swept left to right, emitting
//! one candidate pair per *overlapping run pair* — for line instances
//! exactly once per conflicting pair, for tree paths at most once per pair
//! of intersecting runs (`O(log² n)`), versus once per shared edge in the
//! old bucket construction. The adjacency is stored as a CSR (flat
//! `offsets` / `neighbors`) with each neighbor list sorted ascending, so
//! the graph is byte-for-byte deterministic across runs and platforms.

use netsched_graph::{DemandInstanceUniverse, InstanceId};

/// The conflict graph of a demand-instance universe, in CSR form.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// `neighbors[offsets[v] .. offsets[v + 1]]` are the conflicts of `v`,
    /// sorted ascending.
    offsets: Vec<u32>,
    neighbors: Vec<InstanceId>,
    num_edges: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of the whole universe.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        let n = universe.num_instances();
        // Candidate conflicting pairs, normalized to (low, high). Duplicates
        // (tree paths intersecting on several runs, overlap + same demand)
        // are removed by the sort/dedup below.
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        // Same-demand cliques.
        for a in 0..universe.num_demands() {
            let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    pairs.push(ordered(d1, d2));
                }
            }
        }

        // Shared-edge conflicts via a per-network interval sweep. Runs are
        // sorted by start; every run still active when a later run begins
        // overlaps it.
        for t in 0..universe.num_networks() {
            let network = netsched_graph::NetworkId::new(t);
            let mut runs: Vec<(u32, u32, u32)> = Vec::new(); // (start, end, instance)
            for &d in universe.instances_on_network(network) {
                for run in universe.instance(d).path.runs() {
                    runs.push((run.start, run.end, d.index() as u32));
                }
            }
            runs.sort_unstable();
            let mut active: Vec<(u32, u32)> = Vec::new(); // (end, instance)
            for &(start, end, inst) in &runs {
                active.retain(|&(e, _)| e >= start);
                for &(_, other) in &active {
                    if other != inst {
                        pairs.push(if other < inst {
                            (other, inst)
                        } else {
                            (inst, other)
                        });
                    }
                }
                active.push((end, inst));
            }
        }

        pairs.sort_unstable();
        pairs.dedup();
        let num_edges = pairs.len();

        // CSR assembly. Iterating the sorted unique pairs keeps every
        // neighbor list sorted ascending without any per-vertex sort.
        let mut degree = vec![0u32; n];
        for &(a, b) in &pairs {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![InstanceId::new(0); 2 * num_edges];
        for &(a, b) in &pairs {
            neighbors[cursor[a as usize] as usize] = InstanceId(b);
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = InstanceId(a);
            cursor[b as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }

        Self {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Number of vertices (demand instances).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of conflict edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The instances conflicting with `d`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, d: InstanceId) -> &[InstanceId] {
        &self.neighbors[self.offsets[d.index()] as usize..self.offsets[d.index() + 1] as usize]
    }

    /// Degree of `d` in the conflict graph.
    #[inline]
    pub fn degree(&self, d: InstanceId) -> usize {
        (self.offsets[d.index() + 1] - self.offsets[d.index()]) as usize
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(InstanceId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `a` and `b` conflict.
    pub fn are_conflicting(&self, a: InstanceId, b: InstanceId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Checks that a vertex subset is independent in the conflict graph.
    pub fn is_independent(&self, set: &[InstanceId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || self.are_conflicting(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[inline]
fn ordered(a: InstanceId, b: InstanceId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};

    #[test]
    fn conflict_graph_matches_universe_predicate() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let g = ConflictGraph::build(&universe);
            assert_eq!(g.num_vertices(), universe.num_instances());
            for a in universe.instance_ids() {
                for b in universe.instance_ids() {
                    if a == b {
                        continue;
                    }
                    assert_eq!(
                        g.are_conflicting(a, b),
                        universe.conflicting(a, b),
                        "mismatch for {a}, {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_conflict_counts() {
        let u = figure1_line_problem().universe();
        let g = ConflictGraph::build(&u);
        // A–B overlap; B–C and A–C do not.
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(InstanceId::new(0)), 1);
        assert_eq!(g.degree(InstanceId::new(2)), 0);
        assert!(g.is_independent(&[InstanceId::new(0), InstanceId::new(2)]));
        assert!(!g.is_independent(&[InstanceId::new(0), InstanceId::new(1)]));
    }

    #[test]
    fn same_demand_instances_are_adjacent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let insts = u.instances_of_demand(netsched_graph::DemandId::new(0));
        assert_eq!(insts.len(), 2);
        assert!(g.are_conflicting(insts[0], insts[1]));
    }

    #[test]
    fn degrees_and_max_degree_are_consistent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let sum: usize = (0..g.num_vertices())
            .map(|i| g.degree(InstanceId::new(i)))
            .sum();
        assert_eq!(sum, 2 * g.num_edges());
        assert!(g.max_degree() < g.num_vertices());
    }

    #[test]
    fn adjacency_is_sorted_and_deterministic() {
        // The interval sweep must produce identical, sorted adjacency on
        // every build — downstream MIS tie-breaking depends on it. (The old
        // bucket construction iterated a SipHash-seeded HashMap here.)
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let g1 = ConflictGraph::build(&universe);
            let g2 = ConflictGraph::build(&universe);
            assert_eq!(g1.offsets, g2.offsets);
            assert_eq!(g1.neighbors, g2.neighbors);
            for v in universe.instance_ids() {
                assert!(
                    g1.neighbors(v).windows(2).all(|w| w[0] < w[1]),
                    "adjacency of {v} must be strictly sorted"
                );
            }
        }
    }
}
