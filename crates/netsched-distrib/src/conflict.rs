//! The conflict graph over demand instances.
//!
//! Two demand instances conflict when they belong to the same demand or
//! when they overlap on the same network (Section 2). The MIS computations
//! of the distributed algorithm (Section 5) are performed on (induced
//! subgraphs of) this graph: "the demand instances participating in the MIS
//! computation form the vertices and an edge is drawn between a pair of
//! vertices, if they are conflicting".
//!
//! Construction is a sort-based **interval sweep** over the implicit
//! interval runs of every path (no hash maps, no per-edge buckets): runs on
//! the same network are sorted by start and swept left to right, emitting
//! one candidate pair per *overlapping run pair* — for line instances
//! exactly once per conflicting pair, for tree paths at most once per pair
//! of intersecting runs (`O(log² n)`), versus once per shared edge in the
//! old bucket construction. The adjacency is stored as a CSR (flat
//! `offsets` / `neighbors`) with each neighbor list sorted ascending, so
//! the graph is byte-for-byte deterministic across runs and platforms.
//!
//! # Sharded construction
//!
//! Overlap edges never cross networks, so the sweep decomposes perfectly
//! along the shards of a [`ShardedUniverse`]: [`ShardedConflictGraph`]
//! builds one local CSR per shard (sweep, sort and CSR assembly all inside
//! the shard task, driven shard-parallel through rayon) and keeps the only
//! cross-shard edges — same-demand cliques spanning networks — in a
//! compact global cross-shard CSR. [`ShardedConflictGraph::merged`] folds
//! the per-shard CSRs and the cross adjacency back into a single
//! [`ConflictGraph`] that is **byte-identical** to what the
//! single-threaded [`ConflictGraph::build`] produces, at any thread count
//! (the per-shard pair sets are disjoint and deterministic, so the merge
//! is a permutation-free set union).

use netsched_graph::{
    DemandInstanceUniverse, InstanceId, NetworkId, ShardedUniverse, UniverseDelta, UniverseShard,
};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The conflict graph of a demand-instance universe, in CSR form.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// `neighbors[offsets[v] .. offsets[v + 1]]` are the conflicts of `v`,
    /// sorted ascending.
    offsets: Vec<u32>,
    neighbors: Vec<InstanceId>,
    num_edges: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of the whole universe.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        let n = universe.num_instances();
        // Candidate conflicting pairs, normalized to (low, high). Duplicates
        // (tree paths intersecting on several runs, overlap + same demand)
        // are removed by the sort/dedup below.
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        // Same-demand cliques.
        for a in 0..universe.num_demands() {
            let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
            for (i, &d1) in group.iter().enumerate() {
                for &d2 in &group[i + 1..] {
                    pairs.push(ordered(d1, d2));
                }
            }
        }

        // Shared-edge conflicts via a per-network interval sweep. Runs are
        // sorted by start; every run still active when a later run begins
        // overlaps it.
        for t in 0..universe.num_networks() {
            let network = netsched_graph::NetworkId::new(t);
            let mut runs: Vec<(u32, u32, u32)> = Vec::new(); // (start, end, instance)
            for &d in universe.instances_on_network(network) {
                for run in universe.instance(d).path.runs() {
                    runs.push((run.start, run.end, d.index() as u32));
                }
            }
            runs.sort_unstable();
            let mut active: Vec<(u32, u32)> = Vec::new(); // (end, instance)
            for &(start, end, inst) in &runs {
                active.retain(|&(e, _)| e >= start);
                for &(_, other) in &active {
                    if other != inst {
                        pairs.push(if other < inst {
                            (other, inst)
                        } else {
                            (inst, other)
                        });
                    }
                }
                active.push((end, inst));
            }
        }

        pairs.sort_unstable();
        pairs.dedup();
        assemble_csr(n, &pairs)
    }

    /// Number of vertices (demand instances).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of conflict edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The instances conflicting with `d`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, d: InstanceId) -> &[InstanceId] {
        &self.neighbors[self.offsets[d.index()] as usize..self.offsets[d.index() + 1] as usize]
    }

    /// Degree of `d` in the conflict graph.
    #[inline]
    pub fn degree(&self, d: InstanceId) -> usize {
        (self.offsets[d.index() + 1] - self.offsets[d.index()]) as usize
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(InstanceId::new(v)))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `a` and `b` conflict.
    pub fn are_conflicting(&self, a: InstanceId, b: InstanceId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Checks that a vertex subset is independent in the conflict graph.
    pub fn is_independent(&self, set: &[InstanceId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || self.are_conflicting(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[inline]
fn ordered(a: InstanceId, b: InstanceId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Assembles the raw CSR arrays from sorted, deduplicated `(low, high)`
/// pairs. Iterating the sorted unique pairs keeps every neighbor list
/// sorted ascending without any per-vertex sort; the output is fully
/// determined by the pair *set*, which is what makes the sharded merge
/// byte-identical to the single-threaded build. Shared by the global
/// ([`ConflictGraph`]) and per-shard ([`ShardConflict`]) assemblies so the
/// algorithm exists exactly once.
fn assemble_csr_arrays(n: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut degree = vec![0u32; n];
    for &(a, b) in pairs {
        degree[a as usize] += 1;
        degree[b as usize] += 1;
    }
    let mut offsets = vec![0u32; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0u32; 2 * pairs.len()];
    for &(a, b) in pairs {
        neighbors[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        neighbors[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }
    for v in 0..n {
        neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
    }
    (offsets, neighbors)
}

/// [`assemble_csr_arrays`] wrapped into a [`ConflictGraph`].
fn assemble_csr(n: usize, pairs: &[(u32, u32)]) -> ConflictGraph {
    let (offsets, neighbors) = assemble_csr_arrays(n, pairs);
    ConflictGraph {
        offsets,
        neighbors: neighbors.into_iter().map(InstanceId).collect(),
        num_edges: pairs.len(),
    }
}

/// The conflict edges local to one shard (overlaps plus same-demand pairs
/// on the shard's network), as a CSR over the shard's *local* instance ids.
#[derive(Debug, Clone)]
pub struct ShardConflict {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    num_edges: usize,
}

impl ShardConflict {
    /// Builds the local CSR from sorted, deduplicated local pairs.
    fn from_pairs(n: usize, pairs: &[(u32, u32)]) -> Self {
        let (offsets, neighbors) = assemble_csr_arrays(n, pairs);
        Self {
            offsets,
            neighbors,
            num_edges: pairs.len(),
        }
    }

    /// Number of local vertices (instances of the shard).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of conflict edges local to the shard.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The local ids conflicting with local vertex `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of local vertex `v` within the shard.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }
}

/// Per-shard local `(low, high)` pair lists plus the global cross-shard
/// pair list, as returned by [`route_demand_cliques`].
type RoutedCliques = (Vec<Vec<(u32, u32)>>, Vec<(u32, u32)>);

/// Routes every same-demand clique pair of the universe: pairs whose
/// endpoints share a network go to that shard's local list (as ascending
/// local ids — locals follow global order within a shard) for the shards
/// selected by `keep`, and pairs spanning networks go to the global
/// cross-shard list (always collected in full — cross rows are assembled
/// wholesale). Shared by the from-scratch construction (`keep` everything)
/// and the delta rebuild (`keep` the dirty shards) so the routing rule
/// exists exactly once.
fn route_demand_cliques(
    universe: &DemandInstanceUniverse,
    sharding: &ShardedUniverse,
    keep: impl Fn(usize) -> bool,
) -> RoutedCliques {
    let mut demand_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); sharding.num_shards()];
    let mut cross_pairs: Vec<(u32, u32)> = Vec::new();
    for a in 0..universe.num_demands() {
        let group = universe.instances_of_demand(netsched_graph::DemandId::new(a));
        for (i, &d1) in group.iter().enumerate() {
            for &d2 in &group[i + 1..] {
                let (t1, t2) = (sharding.shard_of(d1), sharding.shard_of(d2));
                if t1 == t2 {
                    if keep(t1.index()) {
                        demand_pairs[t1.index()]
                            .push((sharding.local_of(d1), sharding.local_of(d2)));
                    }
                } else {
                    cross_pairs.push(ordered(d1, d2));
                }
            }
        }
    }
    (demand_pairs, cross_pairs)
}

/// One shard's local CSR from its (pre-sorted) run array plus the local
/// same-demand pairs routed to it. This is the complete per-shard build —
/// interval sweep, sort, dedup, CSR assembly — shared verbatim by the
/// from-scratch construction ([`ShardedConflictGraph::build_with`]) and the
/// dirty-shard rebuild ([`ShardedConflictGraph::apply_delta`]), so the two
/// paths cannot drift apart.
fn sweep_shard(shard: &UniverseShard, mut pairs: Vec<(u32, u32)>) -> ShardConflict {
    let mut active: Vec<(u32, u32)> = Vec::new(); // (end, local)
    for run in shard.runs() {
        active.retain(|&(e, _)| e >= run.start);
        for &(_, other) in &active {
            if other != run.local {
                pairs.push(if other < run.local {
                    (other, run.local)
                } else {
                    (run.local, other)
                });
            }
        }
        active.push((run.end, run.local));
    }
    pairs.sort_unstable();
    pairs.dedup();
    ShardConflict::from_pairs(shard.len(), &pairs)
}

/// The conflict graph in sharded form: one local CSR per network plus a
/// compact cross-shard adjacency holding the same-demand cliques that span
/// networks (the only conflict edges that ever cross a shard boundary).
///
/// The graph is *mutable over time*: [`ShardedConflictGraph::apply_delta`]
/// re-synchronizes it with a universe splice by rebuilding only the dirty
/// shards' local CSRs and the cross-shard rows, bumping a generation
/// counter that also keys the cached [`merged`](ShardedConflictGraph::merged)
/// fold.
#[derive(Debug)]
pub struct ShardedConflictGraph {
    sharding: ShardedUniverse,
    shards: Vec<ShardConflict>,
    /// Cross-shard same-demand edges, as a global CSR.
    cross: ConflictGraph,
    /// Bumped by every [`ShardedConflictGraph::apply_delta`]; keys the
    /// merged-fold cache.
    generation: u64,
    /// Cached result of [`ShardedConflictGraph::merged`] for `generation`.
    merged_cache: Mutex<Option<(u64, ConflictGraph)>>,
    /// How many times the merged fold actually ran (tests pin the caching).
    merged_folds: AtomicU64,
}

impl Clone for ShardedConflictGraph {
    fn clone(&self) -> Self {
        Self {
            sharding: self.sharding.clone(),
            shards: self.shards.clone(),
            cross: self.cross.clone(),
            generation: self.generation,
            merged_cache: Mutex::new(self.merged_cache.lock().unwrap().clone()),
            merged_folds: AtomicU64::new(self.merged_folds.load(Ordering::Relaxed)),
        }
    }
}

impl ShardedConflictGraph {
    /// Builds the sharded conflict graph of a universe, partitioning it by
    /// network first.
    pub fn build(universe: &DemandInstanceUniverse) -> Self {
        Self::build_with(universe, ShardedUniverse::build(universe))
    }

    /// Builds the sharded conflict graph on an existing partition.
    ///
    /// The per-shard interval sweeps (and their sorts and CSR assemblies)
    /// run shard-parallel through rayon; the same-demand cliques are split
    /// serially beforehand into per-shard and cross-shard pair lists
    /// (`O(Σ |Inst(a)|²)`, the size of the cliques themselves).
    pub fn build_with(universe: &DemandInstanceUniverse, sharding: ShardedUniverse) -> Self {
        // Same-demand cliques, routed to the owning shard when both
        // endpoints share a network and to the cross-shard list otherwise.
        let (demand_pairs, mut cross_pairs) = route_demand_cliques(universe, &sharding, |_| true);

        // One task per shard: interval sweep + same-demand pairs → local CSR.
        let work: Vec<(usize, Vec<(u32, u32)>)> = demand_pairs.into_iter().enumerate().collect();
        let sharding_ref = &sharding;
        let shards: Vec<ShardConflict> = work
            .into_par_iter()
            .map(move |(t, pairs)| sweep_shard(&sharding_ref.shards()[t], pairs))
            .collect();

        cross_pairs.sort_unstable();
        cross_pairs.dedup();
        let cross = assemble_csr(sharding.num_instances(), &cross_pairs);

        Self {
            sharding,
            shards,
            cross,
            generation: 0,
            merged_cache: Mutex::new(None),
            merged_folds: AtomicU64::new(0),
        }
    }

    /// Re-synchronizes the graph with a universe splice
    /// ([`DemandInstanceUniverse::apply_demand_delta`]): the owned
    /// [`ShardedUniverse`] is spliced in place, the local CSRs of the
    /// delta's **dirty** shards are rebuilt by the same per-shard sweep the
    /// from-scratch construction uses (driven shard-parallel through
    /// rayon), clean shards are kept untouched (their local id space did
    /// not change), and the cross-shard same-demand CSR — whose global ids
    /// were renumbered by the splice — is re-assembled from the surviving
    /// demand cliques.
    ///
    /// Cost: `O(|D| + Σ |Inst(a)|²)` for the clique routing and cross
    /// re-assembly plus the full sweep cost of the dirty shards only; a
    /// batch that touches `k` of `r` networks leaves the other `r − k`
    /// shards' sweep, sort and CSR assembly entirely unpaid. The result is
    /// byte-identical to `ShardedConflictGraph::build(universe)`.
    ///
    /// Bumps the [`generation`](ShardedConflictGraph::generation) counter,
    /// invalidating the cached [`merged`](ShardedConflictGraph::merged)
    /// fold.
    pub fn apply_delta(&mut self, universe: &DemandInstanceUniverse, delta: &UniverseDelta) {
        self.sharding.apply_delta(universe, delta);

        // Same-demand cliques: local pairs for dirty shards, plus the full
        // cross-shard list (it is renumbered wholesale by the splice).
        let dirty = delta.dirty();
        let (demand_pairs, mut cross_pairs) =
            route_demand_cliques(universe, &self.sharding, |t| dirty[t]);

        let sharding_ref = &self.sharding;
        let work: Vec<(usize, Vec<(u32, u32)>)> = demand_pairs
            .into_iter()
            .enumerate()
            .filter(|&(t, _)| dirty[t])
            .collect();
        let rebuilt: Vec<(usize, ShardConflict)> = work
            .into_par_iter()
            .map(move |(t, pairs)| (t, sweep_shard(&sharding_ref.shards()[t], pairs)))
            .collect();
        for (t, shard) in rebuilt {
            self.shards[t] = shard;
        }

        cross_pairs.sort_unstable();
        cross_pairs.dedup();
        self.cross = assemble_csr(universe.num_instances(), &cross_pairs);
        self.generation += 1;
    }

    /// The current generation: 0 after a from-scratch build, bumped by
    /// every [`ShardedConflictGraph::apply_delta`].
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many times the merged fold has actually run (as opposed to being
    /// served from the generation-keyed cache).
    #[inline]
    pub fn merged_fold_count(&self) -> u64 {
        self.merged_folds.load(Ordering::Relaxed)
    }

    /// Advances the generation counter to at least `to` and drops the
    /// cached merged fold.
    ///
    /// A graph rebuilt from a **restored** session snapshot starts over at
    /// generation 0, so any external cache keyed by
    /// [`generation`](ShardedConflictGraph::generation) (including the
    /// internal merged-fold cache of a state that outlived the rebuild)
    /// could serve a pre-crash fold for a post-restore graph. The restore
    /// path calls this with the recovered epoch counter, re-establishing
    /// the invariant that generations never repeat across the lifetime of
    /// a logical session.
    pub fn advance_generation(&mut self, to: u64) {
        self.generation = self.generation.max(to);
        *self.merged_cache.lock().expect("merged cache poisoned") = None;
    }

    /// The universe partition the graph was built on.
    #[inline]
    pub fn sharding(&self) -> &ShardedUniverse {
        &self.sharding
    }

    /// Number of shards (== networks).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices (demand instances).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.sharding.num_instances()
    }

    /// Total number of conflict edges (local plus cross-shard).
    pub fn num_edges(&self) -> usize {
        self.shards
            .iter()
            .map(ShardConflict::num_edges)
            .sum::<usize>()
            + self.cross.num_edges()
    }

    /// The local CSR of one shard.
    #[inline]
    pub fn shard(&self, t: NetworkId) -> &ShardConflict {
        &self.shards[t.index()]
    }

    /// All per-shard CSRs, indexed by network.
    #[inline]
    pub fn shards(&self) -> &[ShardConflict] {
        &self.shards
    }

    /// The cross-shard same-demand neighbors of a global instance, sorted
    /// ascending.
    #[inline]
    pub fn cross_neighbors(&self, d: InstanceId) -> &[InstanceId] {
        self.cross.neighbors(d)
    }

    /// Degree of a global instance in the full conflict graph.
    #[inline]
    pub fn degree(&self, d: InstanceId) -> usize {
        self.shards[self.sharding.shard_of(d).index()].degree(self.sharding.local_of(d))
            + self.cross.degree(d)
    }

    /// Folds the per-shard CSRs and the cross-shard adjacency into a single
    /// global [`ConflictGraph`].
    ///
    /// The result is byte-identical to [`ConflictGraph::build`] on the same
    /// universe, at any thread count: local pair sets are per-shard
    /// deterministic and disjoint across shards, cross pairs are disjoint
    /// from both, and [`assemble_csr`] is a pure function of the sorted
    /// pair set.
    ///
    /// The fold is cached behind the graph's generation counter: repeated
    /// calls between mutations return a clone of the cached CSR (one
    /// `memcpy`-class copy) instead of re-folding, and
    /// [`ShardedConflictGraph::apply_delta`] invalidates the cache by
    /// bumping the generation.
    pub fn merged(&self) -> ConflictGraph {
        let mut cache = self.merged_cache.lock().expect("merged cache poisoned");
        if let Some((generation, graph)) = cache.as_ref() {
            if *generation == self.generation {
                return graph.clone();
            }
        }
        let graph = self.fold_merged();
        self.merged_folds.fetch_add(1, Ordering::Relaxed);
        *cache = Some((self.generation, graph.clone()));
        graph
    }

    /// The uncached merged fold behind [`ShardedConflictGraph::merged`].
    fn fold_merged(&self) -> ConflictGraph {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let shard_pairs: Vec<Vec<(u32, u32)>> = (0..self.shards.len())
            .into_par_iter()
            .map(|t| {
                let shard = &self.shards[t];
                let globals = self.sharding.shards()[t].globals();
                let mut out = Vec::with_capacity(shard.num_edges());
                for v in 0..shard.num_vertices() as u32 {
                    let g = globals[v as usize].0;
                    for &u in shard.neighbors(v) {
                        if u > v {
                            out.push((g, globals[u as usize].0));
                        }
                    }
                }
                out
            })
            .collect();
        for sp in shard_pairs {
            pairs.extend(sp);
        }
        for v in 0..self.cross.num_vertices() {
            let d = InstanceId::new(v);
            for &u in self.cross.neighbors(d) {
                if u > d {
                    pairs.push((d.0, u.0));
                }
            }
        }
        pairs.sort_unstable();
        assemble_csr(self.num_vertices(), &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};

    #[test]
    fn conflict_graph_matches_universe_predicate() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let g = ConflictGraph::build(&universe);
            assert_eq!(g.num_vertices(), universe.num_instances());
            for a in universe.instance_ids() {
                for b in universe.instance_ids() {
                    if a == b {
                        continue;
                    }
                    assert_eq!(
                        g.are_conflicting(a, b),
                        universe.conflicting(a, b),
                        "mismatch for {a}, {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_conflict_counts() {
        let u = figure1_line_problem().universe();
        let g = ConflictGraph::build(&u);
        // A–B overlap; B–C and A–C do not.
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(InstanceId::new(0)), 1);
        assert_eq!(g.degree(InstanceId::new(2)), 0);
        assert!(g.is_independent(&[InstanceId::new(0), InstanceId::new(2)]));
        assert!(!g.is_independent(&[InstanceId::new(0), InstanceId::new(1)]));
    }

    #[test]
    fn same_demand_instances_are_adjacent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let insts = u.instances_of_demand(netsched_graph::DemandId::new(0));
        assert_eq!(insts.len(), 2);
        assert!(g.are_conflicting(insts[0], insts[1]));
    }

    #[test]
    fn degrees_and_max_degree_are_consistent() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let sum: usize = (0..g.num_vertices())
            .map(|i| g.degree(InstanceId::new(i)))
            .sum();
        assert_eq!(sum, 2 * g.num_edges());
        assert!(g.max_degree() < g.num_vertices());
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_the_flat_build() {
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let flat = ConflictGraph::build(&universe);
            let sharded = ShardedConflictGraph::build(&universe);
            let merged = sharded.merged();
            assert_eq!(flat.offsets, merged.offsets);
            assert_eq!(flat.neighbors, merged.neighbors);
            assert_eq!(flat.num_edges(), merged.num_edges());
            assert_eq!(flat.num_edges(), sharded.num_edges());
            for d in universe.instance_ids() {
                assert_eq!(sharded.degree(d), flat.degree(d), "degree of {d}");
            }
        }
    }

    #[test]
    fn cross_adjacency_holds_exactly_the_spanning_same_demand_cliques() {
        let u = two_tree_problem().universe();
        let sharded = ShardedConflictGraph::build(&u);
        for a in u.instance_ids() {
            for &b in sharded.cross_neighbors(a) {
                assert_eq!(u.demand_of(a), u.demand_of(b));
                assert_ne!(u.instance(a).network, u.instance(b).network);
            }
        }
        // Every cross-network same-demand pair appears.
        for a in u.instance_ids() {
            for b in u.instance_ids() {
                if a != b
                    && u.demand_of(a) == u.demand_of(b)
                    && u.instance(a).network != u.instance(b).network
                {
                    assert!(sharded.cross_neighbors(a).binary_search(&b).is_ok());
                }
            }
        }
    }

    #[test]
    fn shard_csr_matches_the_universe_predicate_locally() {
        let u = figure6_problem().universe();
        let sharded = ShardedConflictGraph::build(&u);
        for (t, shard) in sharded.shards().iter().enumerate() {
            let network = netsched_graph::NetworkId::new(t);
            let part = sharded.sharding().shard(network);
            for v in 0..shard.num_vertices() as u32 {
                let dv = part.global_of(v);
                for &w in shard.neighbors(v) {
                    assert!(u.conflicting(dv, part.global_of(w)));
                }
            }
        }
    }

    #[test]
    fn apply_delta_is_byte_identical_to_a_from_scratch_build() {
        use netsched_graph::{ArrivingDemand, DemandId, TreeProblem, UniverseDelta, VertexId};

        let mut p = TreeProblem::new(8);
        let line: Vec<(VertexId, VertexId)> = (0..7)
            .map(|i| (VertexId::new(i), VertexId::new(i + 1)))
            .collect();
        let t0 = p.add_network(line.clone()).unwrap();
        let t1 = p.add_network(line.clone()).unwrap();
        let t2 = p.add_network(line).unwrap();
        p.add_unit_demand(VertexId(0), VertexId(4), 1.0, vec![t0, t1])
            .unwrap();
        p.add_unit_demand(VertexId(2), VertexId(6), 2.0, vec![t0])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(3), 3.0, vec![t1, t2])
            .unwrap();
        p.add_unit_demand(VertexId(5), VertexId(7), 4.0, vec![t2])
            .unwrap();
        let mut universe = p.universe();
        let mut incremental = ShardedConflictGraph::build(&universe);
        let mut delta = UniverseDelta::new();

        // Epoch 1: expire demand 1 (network 0), add a demand on networks
        // 0 and 2. Epoch 2: expire demand 0, empty arrivals.
        let batches: Vec<(Vec<DemandId>, Vec<ArrivingDemand>)> = vec![
            (
                vec![DemandId(1)],
                vec![ArrivingDemand {
                    profit: 9.0,
                    height: 1.0,
                    instances: vec![
                        (t0, p.network(t0).path_edges(VertexId(3), VertexId(6)), None),
                        (t2, p.network(t2).path_edges(VertexId(3), VertexId(6)), None),
                    ],
                }],
            ),
            (vec![DemandId(0)], vec![]),
        ];
        for (expired, arrivals) in batches {
            universe.apply_demand_delta(&expired, &arrivals, &mut delta);
            incremental.apply_delta(&universe, &delta);

            let fresh = ShardedConflictGraph::build(&universe);
            let flat = ConflictGraph::build(&universe);
            let merged = incremental.merged();
            assert_eq!(flat.offsets, merged.offsets);
            assert_eq!(flat.neighbors, merged.neighbors);
            assert_eq!(incremental.num_edges(), fresh.num_edges());
            for t in 0..incremental.num_shards() {
                let network = NetworkId::new(t);
                let (a, b) = (incremental.shard(network), fresh.shard(network));
                assert_eq!(a.num_vertices(), b.num_vertices(), "shard {t}");
                assert_eq!(a.num_edges(), b.num_edges(), "shard {t}");
                for v in 0..a.num_vertices() as u32 {
                    assert_eq!(a.neighbors(v), b.neighbors(v), "shard {t} vertex {v}");
                }
            }
            for d in universe.instance_ids() {
                assert_eq!(
                    incremental.cross_neighbors(d),
                    fresh.cross_neighbors(d),
                    "cross row of {d}"
                );
                assert_eq!(incremental.degree(d), flat.degree(d), "degree of {d}");
            }
        }
        assert_eq!(incremental.generation(), 2);
    }

    #[test]
    fn merged_fold_is_cached_behind_the_generation_counter() {
        use netsched_graph::{DemandId, UniverseDelta};

        let mut universe = two_tree_problem().universe();
        let mut sharded = ShardedConflictGraph::build(&universe);
        assert_eq!(sharded.merged_fold_count(), 0);
        let a = sharded.merged();
        let b = sharded.merged();
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(
            sharded.merged_fold_count(),
            1,
            "second call must be served from the cache"
        );

        // A delta bumps the generation and invalidates the cache once.
        let mut delta = UniverseDelta::new();
        universe.apply_demand_delta(&[DemandId(0)], &[], &mut delta);
        sharded.apply_delta(&universe, &delta);
        assert_eq!(sharded.generation(), 1);
        let c = sharded.merged();
        let _ = sharded.merged();
        assert_eq!(sharded.merged_fold_count(), 2);
        assert_eq!(c.offsets, ConflictGraph::build(&universe).offsets);
    }

    #[test]
    fn advance_generation_invalidates_the_merged_cache() {
        let universe = two_tree_problem().universe();
        let mut sharded = ShardedConflictGraph::build(&universe);
        let _ = sharded.merged();
        assert_eq!(sharded.merged_fold_count(), 1);

        // A restore-style advance must both raise the counter and force
        // the next merged() to re-fold.
        sharded.advance_generation(17);
        assert_eq!(sharded.generation(), 17);
        let refolded = sharded.merged();
        assert_eq!(sharded.merged_fold_count(), 2);
        assert_eq!(refolded.offsets, ConflictGraph::build(&universe).offsets);

        // Advancing backwards never regresses the counter.
        sharded.advance_generation(3);
        assert_eq!(sharded.generation(), 17);
    }

    #[test]
    fn adjacency_is_sorted_and_deterministic() {
        // The interval sweep must produce identical, sorted adjacency on
        // every build — downstream MIS tie-breaking depends on it. (The old
        // bucket construction iterated a SipHash-seeded HashMap here.)
        for universe in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
            figure6_problem().universe(),
        ] {
            let g1 = ConflictGraph::build(&universe);
            let g2 = ConflictGraph::build(&universe);
            assert_eq!(g1.offsets, g2.offsets);
            assert_eq!(g1.neighbors, g2.neighbors);
            for v in universe.instance_ids() {
                assert!(
                    g1.neighbors(v).windows(2).all(|w| w[0] < w[1]),
                    "adjacency of {v} must be strictly sorted"
                );
            }
        }
    }
}
