//! Maximal independent set computation on the conflict graph.
//!
//! The first phase of the distributed algorithm repeatedly computes a
//! maximal independent set among the still-unsatisfied demand instances
//! (Section 5). The paper plugs in either Luby's randomized algorithm [14]
//! (`O(log N)` rounds in expectation) or the deterministic
//! network-decomposition algorithm [17]; we implement Luby's algorithm as a
//! genuine message-passing protocol on the [`SyncSimulator`], plus a
//! sequential greedy MIS used as a deterministic baseline and for testing.

use crate::conflict::{ConflictGraph, ShardedConflictGraph};
use crate::simulator::{Agent, Outbox, SyncSimulator, Topology};
use crate::stats::RoundStats;
use fxhash::{FxHashMap, FxHashSet};
use netsched_graph::InstanceId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// How to compute maximal independent sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisStrategy {
    /// Luby's randomized distributed algorithm, run on the synchronous
    /// simulator; the seed makes runs reproducible.
    Luby {
        /// Seed for the per-vertex random values.
        seed: u64,
    },
    /// A sequential greedy MIS (lowest identifier first). Counted as a
    /// single communication round; useful as a deterministic stand-in and
    /// for differential testing.
    SequentialGreedy,
}

/// State of a vertex during Luby's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LubyState {
    Active,
    InMis,
    Out,
}

/// Messages exchanged by the Luby protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LubyMsg {
    /// The random value drawn this phase.
    Value(u64),
    /// The sender joined the MIS.
    Joined,
    /// The sender dropped out (a neighbour joined).
    Dropped,
}

struct LubyAgent {
    state: LubyState,
    rng: SmallRng,
    /// Number of neighbours still active (including those whose status
    /// updates are still in flight).
    active_neighbors: FxHashSet<usize>,
    /// Value drawn in the current phase.
    my_value: u64,
    /// Values received from neighbours this phase.
    best_neighbor: Option<(u64, usize)>,
    my_index: usize,
}

impl Agent for LubyAgent {
    type Msg = LubyMsg;

    fn step(&mut self, round: usize, inbox: &[(usize, LubyMsg)]) -> Outbox<LubyMsg> {
        // Process status updates first (they can arrive in any sub-round).
        for &(from, msg) in inbox {
            match msg {
                LubyMsg::Joined => {
                    self.active_neighbors.remove(&from);
                    if self.state == LubyState::Active {
                        self.state = LubyState::Out;
                    }
                }
                LubyMsg::Dropped => {
                    self.active_neighbors.remove(&from);
                }
                LubyMsg::Value(v) => {
                    if self.active_neighbors.contains(&from) {
                        let cand = (v, from);
                        if self.best_neighbor.is_none_or(|b| cand > b) {
                            self.best_neighbor = Some(cand);
                        }
                    }
                }
            }
        }

        match round % 3 {
            0 => {
                // Sub-round A: draw and broadcast a random value.
                if self.state == LubyState::Active {
                    self.my_value = self.rng.gen();
                    self.best_neighbor = None;
                    Outbox::Broadcast(LubyMsg::Value(self.my_value))
                } else {
                    Outbox::Silent
                }
            }
            1 => {
                // Sub-round B: join the MIS if the local value is the
                // largest among active neighbours (ties broken by index).
                if self.state == LubyState::Active {
                    let me = (self.my_value, self.my_index);
                    let wins = self.best_neighbor.is_none_or(|b| me > b);
                    if wins {
                        self.state = LubyState::InMis;
                        return Outbox::Broadcast(LubyMsg::Joined);
                    }
                }
                Outbox::Silent
            }
            _ => {
                // Sub-round C: vertices knocked out this phase tell their
                // neighbours to stop waiting for them.
                if self.state == LubyState::Out && !self.active_neighbors.is_empty() {
                    let out = Outbox::Broadcast(LubyMsg::Dropped);
                    self.active_neighbors.clear();
                    return out;
                }
                Outbox::Silent
            }
        }
    }

    fn is_done(&self) -> bool {
        self.state != LubyState::Active
    }
}

/// Computes a maximal independent set of the subgraph of the conflict graph
/// induced by `active`, recording its communication cost into `stats`.
///
/// The returned set is sorted by instance id.
pub fn maximal_independent_set(
    graph: &ConflictGraph,
    active: &[InstanceId],
    strategy: MisStrategy,
    stats: &mut RoundStats,
) -> Vec<InstanceId> {
    if active.is_empty() {
        return Vec::new();
    }
    match strategy {
        MisStrategy::SequentialGreedy => {
            let set = greedy_mis(graph, active);
            stats.record_mis(1);
            set
        }
        MisStrategy::Luby { seed } => {
            // Induced subgraph: map instance ids to local indices. The
            // deterministic Fx hasher keeps the whole protocol reproducible
            // independent of the process hash seed.
            let mut local_of =
                FxHashMap::with_capacity_and_hasher(active.len(), Default::default());
            for (i, &d) in active.iter().enumerate() {
                local_of.insert(d, i);
            }
            let adjacency: Vec<Vec<usize>> = active
                .iter()
                .map(|&d| {
                    graph
                        .neighbors(d)
                        .iter()
                        .filter_map(|n| local_of.get(n).copied())
                        .collect()
                })
                .collect();
            let mut agents: Vec<LubyAgent> = (0..active.len())
                .map(|i| LubyAgent {
                    state: LubyState::Active,
                    rng: SmallRng::seed_from_u64(
                        seed ^ ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                    ),
                    active_neighbors: adjacency[i].iter().copied().collect(),
                    my_value: 0,
                    best_neighbor: None,
                    my_index: i,
                })
                .collect();
            let sim = SyncSimulator::new(Topology::new(adjacency));
            // 3 rounds per phase, O(log N) phases in expectation; allow a
            // generous deterministic cap.
            let max_rounds = 3 * (4 * (usize::BITS - active.len().leading_zeros()) as usize + 16);
            let outcome = sim.run(&mut agents, max_rounds);
            assert!(
                outcome.converged,
                "Luby MIS did not converge within {max_rounds} rounds"
            );
            stats.record_mis(outcome.stats.rounds);
            stats.record_messages(outcome.stats.messages, 1);
            let mut set: Vec<InstanceId> = agents
                .iter()
                .enumerate()
                .filter(|(_, a)| a.state == LubyState::InMis)
                .map(|(i, _)| active[i])
                .collect();
            set.sort_unstable();
            debug_assert!(is_maximal_independent(graph, active, &set));
            set
        }
    }
}

/// Sequential greedy MIS over the induced subgraph (lowest id first).
pub fn greedy_mis(graph: &ConflictGraph, active: &[InstanceId]) -> Vec<InstanceId> {
    let mut sorted: Vec<InstanceId> = active.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut chosen: Vec<InstanceId> = Vec::new();
    let mut blocked: FxHashSet<InstanceId> = FxHashSet::default();
    for &d in &sorted {
        if blocked.contains(&d) {
            continue;
        }
        chosen.push(d);
        for &n in graph.neighbors(d) {
            blocked.insert(n);
        }
    }
    chosen
}

// ---------------------------------------------------------------------------
// Shard-parallel MIS over a ShardedConflictGraph.
// ---------------------------------------------------------------------------

/// Active sets below this size run the shard loops serially: the per-phase
/// thread-spawn overhead of the scoped-thread rayon shim outweighs the work.
const PAR_MIN_ACTIVE: usize = 1024;

/// Runs `f` once per shard, either serially or shard-parallel, collecting
/// the results in shard order (identical output either way).
fn run_per_shard<R, F>(num_shards: usize, parallel: bool, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if parallel && num_shards > 1 {
        (0..num_shards).into_par_iter().map(f).collect()
    } else {
        (0..num_shards).map(f).collect()
    }
}

/// Reusable buffers for [`sharded_mis`]: a global instance → active-position
/// table, allocated once per engine run instead of once per MIS call.
#[derive(Debug, Clone)]
pub struct MisScratch {
    /// Instance id → position in the current active list (`u32::MAX` when
    /// absent). Always reset to the sentinel between calls.
    pos: Vec<u32>,
}

impl MisScratch {
    /// Creates scratch space for a universe of `num_instances` instances.
    pub fn new(num_instances: usize) -> Self {
        Self {
            pos: vec![u32::MAX; num_instances],
        }
    }
}

/// Computes a maximal independent set of the subgraph induced by `active`
/// on a sharded conflict graph, shard-parallel.
///
/// Produces **exactly** the same set as [`maximal_independent_set`] on the
/// merged graph for either strategy, at any thread count: the greedy path
/// iterates per-shard lexicographic sweeps to the (unique) fixpoint that
/// equals the global lowest-id-first MIS, and the Luby path executes the
/// same phase protocol as the message-passing simulator with identical
/// per-vertex random streams, evaluating each phase shard-parallel.
/// Communication accounting follows the same model (3 rounds per Luby
/// phase; broadcasts along conflict edges).
pub fn sharded_mis(
    graph: &ShardedConflictGraph,
    active: &[InstanceId],
    strategy: MisStrategy,
    stats: &mut RoundStats,
    scratch: &mut MisScratch,
) -> Vec<InstanceId> {
    if active.is_empty() {
        return Vec::new();
    }
    match strategy {
        MisStrategy::SequentialGreedy => {
            let set = sharded_greedy_mis(graph, active, scratch);
            stats.record_mis(1);
            set
        }
        MisStrategy::Luby { seed } => sharded_luby(graph, active, seed, stats, scratch),
    }
}

/// The lowest-id-first greedy MIS, computed by iterating per-shard
/// lexicographic sweeps with cross-shard membership exchange until the
/// fixpoint. Cross-shard edges are same-demand cliques only, so the
/// exchange settles in a handful of rounds; the fixpoint is consistent
/// ("chosen iff no lower-id chosen neighbor" for every vertex), which
/// pins it to the unique global greedy MIS of [`greedy_mis`].
pub fn sharded_greedy_mis(
    graph: &ShardedConflictGraph,
    active: &[InstanceId],
    scratch: &mut MisScratch,
) -> Vec<InstanceId> {
    let mut sorted: Vec<InstanceId> = active.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    if n == 0 {
        return Vec::new();
    }
    let sharding = graph.sharding();
    for (i, &d) in sorted.iter().enumerate() {
        scratch.pos[d.index()] = i as u32;
    }
    let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); graph.num_shards()];
    for (i, &d) in sorted.iter().enumerate() {
        by_shard[sharding.shard_of(d).index()].push(i as u32);
    }
    let parallel = n >= PAR_MIN_ACTIVE && rayon::current_num_threads() > 1;

    let mut belief = vec![false; n];
    let mut rounds = 0usize;
    loop {
        assert!(
            rounds <= n + 2,
            "sharded greedy MIS failed to reach a fixpoint"
        );
        let pos = &scratch.pos;
        let belief_ref = &belief;
        let sorted_ref = &sorted;
        let by_shard_ref = &by_shard;
        let chosen_parts: Vec<Vec<u32>> = run_per_shard(graph.num_shards(), parallel, |t| {
            let csr = &graph.shards()[t];
            let part = &sharding.shards()[t];
            let mut blocked = vec![false; part.len()];
            let mut chosen = Vec::new();
            for &p in &by_shard_ref[t] {
                let d = sorted_ref[p as usize];
                let local = sharding.local_of(d);
                if blocked[local as usize] {
                    continue;
                }
                let mut cross_blocked = false;
                for g in graph.cross_neighbors(d) {
                    if g >= d {
                        break;
                    }
                    let q = pos[g.index()];
                    if q != u32::MAX && belief_ref[q as usize] {
                        cross_blocked = true;
                        break;
                    }
                }
                if cross_blocked {
                    continue;
                }
                chosen.push(p);
                for &ln in csr.neighbors(local) {
                    blocked[ln as usize] = true;
                }
            }
            chosen
        });
        let mut new_belief = vec![false; n];
        for part in &chosen_parts {
            for &p in part {
                new_belief[p as usize] = true;
            }
        }
        if new_belief == belief {
            break;
        }
        belief = new_belief;
        rounds += 1;
    }

    let result: Vec<InstanceId> = (0..n).filter(|&i| belief[i]).map(|i| sorted[i]).collect();
    for &d in &sorted {
        scratch.pos[d.index()] = u32::MAX;
    }
    result
}

/// Luby's algorithm, phase-synchronous over flat arrays instead of the
/// message-passing simulator, with every sub-round evaluated
/// shard-parallel. Per-vertex random streams, tie-breaking and knockout
/// timing replicate the [`LubyAgent`] protocol exactly, so the chosen set
/// is identical to the simulator's for every seed.
fn sharded_luby(
    graph: &ShardedConflictGraph,
    active: &[InstanceId],
    seed: u64,
    stats: &mut RoundStats,
    scratch: &mut MisScratch,
) -> Vec<InstanceId> {
    const ACTIVE: u8 = 0;
    const IN_MIS: u8 = 1;
    const OUT: u8 = 2;

    let n = active.len();
    let sharding = graph.sharding();
    for (i, &d) in active.iter().enumerate() {
        scratch.pos[d.index()] = i as u32;
    }
    let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); graph.num_shards()];
    for (i, &d) in active.iter().enumerate() {
        by_shard[sharding.shard_of(d).index()].push(i as u32);
    }
    let parallel = n >= PAR_MIN_ACTIVE && rayon::current_num_threads() > 1;
    let num_shards = graph.num_shards();

    // Induced adjacency in active-position space, built shard-parallel.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    {
        let pos = &scratch.pos;
        let active_ref = active;
        let by_shard_ref = &by_shard;
        let parts: Vec<Vec<(u32, Vec<u32>)>> = run_per_shard(num_shards, parallel, |t| {
            let csr = &graph.shards()[t];
            let part = &sharding.shards()[t];
            by_shard_ref[t]
                .iter()
                .map(|&p| {
                    let d = active_ref[p as usize];
                    let local = sharding.local_of(d);
                    let mut nbrs: Vec<u32> = Vec::with_capacity(csr.degree(local));
                    for &ln in csr.neighbors(local) {
                        let q = pos[part.global_of(ln).index()];
                        if q != u32::MAX {
                            nbrs.push(q);
                        }
                    }
                    for g in graph.cross_neighbors(d) {
                        let q = pos[g.index()];
                        if q != u32::MAX {
                            nbrs.push(q);
                        }
                    }
                    (p, nbrs)
                })
                .collect()
        });
        for part in parts {
            for (p, nbrs) in part {
                adj[p as usize] = nbrs;
            }
        }
    }
    let deg: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();

    let mut state = vec![ACTIVE; n];
    let mut values = vec![0u64; n];
    let mut rngs: Vec<SmallRng> = (0..n)
        .map(|i| SmallRng::seed_from_u64(seed ^ ((i as u64).wrapping_mul(0x9E3779B97F4A7C15))))
        .collect();
    // Remaining active-neighbor counts, mirroring the simulator's
    // `active_neighbors` sets for the Dropped-broadcast condition.
    let mut anbrs: Vec<i64> = deg.iter().map(|&d| d as i64).collect();
    let mut pending_drops: Vec<u32> = Vec::new();
    let mut active_list: Vec<u32> = (0..n as u32).collect();

    // Same phase budget as the simulator's round cap (3 rounds per phase).
    let max_phases = 4 * (usize::BITS - n.leading_zeros()) as usize + 16;
    let mut remaining = n;
    let mut phases = 0usize;
    let mut messages = 0u64;

    while remaining > 0 {
        assert!(
            phases < max_phases,
            "Luby MIS did not converge within {max_phases} phases"
        );
        // Dropped notifications from the previous phase arrive first.
        for &p in &pending_drops {
            for &q in &adj[p as usize] {
                anbrs[q as usize] -= 1;
            }
        }
        pending_drops.clear();

        // Sub-round A: every active vertex draws and broadcasts a value.
        active_list.retain(|&p| state[p as usize] == ACTIVE);
        for &p in &active_list {
            values[p as usize] = rngs[p as usize].gen();
            messages += deg[p as usize] as u64;
        }

        // Sub-round B: join when the local (value, index) beats every
        // active neighbor (read-only, shard-parallel).
        let joined_parts: Vec<Vec<u32>> = {
            let state_ref = &state;
            let values_ref = &values;
            let adj_ref = &adj;
            let by_shard_ref = &by_shard;
            run_per_shard(num_shards, parallel, |t| {
                by_shard_ref[t]
                    .iter()
                    .copied()
                    .filter(|&p| {
                        state_ref[p as usize] == ACTIVE && {
                            let me = (values_ref[p as usize], p as usize);
                            adj_ref[p as usize].iter().all(|&q| {
                                state_ref[q as usize] != ACTIVE
                                    || me > (values_ref[q as usize], q as usize)
                            })
                        }
                    })
                    .collect()
            })
        };
        for part in &joined_parts {
            for &p in part {
                state[p as usize] = IN_MIS;
                remaining -= 1;
                messages += deg[p as usize] as u64;
                for &q in &adj[p as usize] {
                    anbrs[q as usize] -= 1;
                }
            }
        }

        // Sub-round C: active vertices adjacent to a joiner drop out and
        // (if they still have undecided neighbors) announce it.
        let out_parts: Vec<Vec<u32>> = {
            let state_ref = &state;
            let adj_ref = &adj;
            let by_shard_ref = &by_shard;
            run_per_shard(num_shards, parallel, |t| {
                by_shard_ref[t]
                    .iter()
                    .copied()
                    .filter(|&p| {
                        state_ref[p as usize] == ACTIVE
                            && adj_ref[p as usize]
                                .iter()
                                .any(|&q| state_ref[q as usize] == IN_MIS)
                    })
                    .collect()
            })
        };
        for part in &out_parts {
            for &p in part {
                state[p as usize] = OUT;
                remaining -= 1;
                if anbrs[p as usize] > 0 {
                    messages += deg[p as usize] as u64;
                    pending_drops.push(p);
                }
            }
        }
        phases += 1;
    }

    stats.record_mis(3 * phases as u64 + 1);
    stats.record_messages(messages, 1);

    let mut set: Vec<InstanceId> = (0..n)
        .filter(|&i| state[i] == IN_MIS)
        .map(|i| active[i])
        .collect();
    set.sort_unstable();
    for &d in active {
        scratch.pos[d.index()] = u32::MAX;
    }
    set
}

/// Checks that `set ⊆ active` is an independent set that is maximal within
/// the subgraph induced by `active`.
pub fn is_maximal_independent(
    graph: &ConflictGraph,
    active: &[InstanceId],
    set: &[InstanceId],
) -> bool {
    let set_lookup: FxHashSet<InstanceId> = set.iter().copied().collect();
    if !graph.is_independent(set) {
        return false;
    }
    for &d in set {
        if !active.contains(&d) {
            return false;
        }
    }
    // Maximality: every active vertex not in the set has a neighbour in it.
    for &d in active {
        if set_lookup.contains(&d) {
            continue;
        }
        let dominated = graph.neighbors(d).iter().any(|n| set_lookup.contains(n));
        if !dominated {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::two_tree_problem;
    use netsched_graph::{DemandInstanceUniverse, NetworkId, TreeProblem, VertexId};
    use rand::rngs::StdRng;

    fn random_universe(seed: u64, n: usize, r: usize, m: usize) -> DemandInstanceUniverse {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let mut nets = Vec::new();
        for _ in 0..r {
            let edges = (1..n)
                .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                .collect();
            nets.push(p.add_network(edges).unwrap());
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_unit_demand(VertexId::new(u), VertexId::new(v), 1.0, access)
                .unwrap();
        }
        p.universe()
    }

    #[test]
    fn luby_produces_maximal_independent_sets() {
        for seed in 0..4u64 {
            let u = random_universe(seed, 30, 3, 40);
            let g = ConflictGraph::build(&u);
            let active: Vec<InstanceId> = u.instance_ids().collect();
            let mut stats = RoundStats::new();
            let set = maximal_independent_set(
                &g,
                &active,
                MisStrategy::Luby { seed: 42 + seed },
                &mut stats,
            );
            assert!(is_maximal_independent(&g, &active, &set), "seed {seed}");
            assert!(stats.rounds > 0);
            assert!(stats.mis_invocations == 1);
        }
    }

    #[test]
    fn luby_on_induced_subgraph() {
        let u = random_universe(9, 25, 2, 30);
        let g = ConflictGraph::build(&u);
        // Restrict to every third instance.
        let active: Vec<InstanceId> = u.instance_ids().filter(|d| d.index() % 3 == 0).collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::Luby { seed: 7 }, &mut stats);
        assert!(is_maximal_independent(&g, &active, &set));
        for d in &set {
            assert!(active.contains(d));
        }
    }

    #[test]
    fn greedy_is_maximal_and_deterministic() {
        let u = random_universe(3, 20, 2, 25);
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().collect();
        let a = greedy_mis(&g, &active);
        let b = greedy_mis(&g, &active);
        assert_eq!(a, b);
        assert!(is_maximal_independent(&g, &active, &a));
    }

    #[test]
    fn luby_rounds_are_logarithmic_in_practice() {
        let u = random_universe(11, 60, 3, 120);
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::Luby { seed: 5 }, &mut stats);
        assert!(is_maximal_independent(&g, &active, &set));
        let n = active.len() as f64;
        // 3 rounds per phase, expected O(log n) phases; the assertion uses a
        // very generous constant so it is robust to unlucky seeds.
        assert!(
            (stats.rounds as f64) <= 3.0 * (12.0 * n.log2() + 20.0),
            "rounds {} too large for N = {}",
            stats.rounds,
            n
        );
    }

    #[test]
    fn sharded_luby_matches_the_simulator_exactly() {
        for seed in 0..6u64 {
            let u = random_universe(seed, 28, 4, 45);
            let flat = ConflictGraph::build(&u);
            let sharded = ShardedConflictGraph::build(&u);
            let mut scratch = MisScratch::new(u.num_instances());
            // Full active set and an induced subset, several Luby seeds.
            let full: Vec<InstanceId> = u.instance_ids().collect();
            let subset: Vec<InstanceId> = u.instance_ids().filter(|d| d.index() % 3 != 1).collect();
            for active in [&full, &subset] {
                for luby_seed in [1u64, 42, 0xDEAD] {
                    let mut s1 = RoundStats::new();
                    let mut s2 = RoundStats::new();
                    let reference = maximal_independent_set(
                        &flat,
                        active,
                        MisStrategy::Luby { seed: luby_seed },
                        &mut s1,
                    );
                    let ours = sharded_mis(
                        &sharded,
                        active,
                        MisStrategy::Luby { seed: luby_seed },
                        &mut s2,
                        &mut scratch,
                    );
                    assert_eq!(reference, ours, "seed {seed}, luby seed {luby_seed}");
                    assert!(s2.rounds > 0 && s2.messages > 0 && s2.mis_invocations == 1);
                }
            }
        }
    }

    #[test]
    fn sharded_greedy_matches_global_greedy() {
        for seed in 0..8u64 {
            let u = random_universe(100 + seed, 24, 5, 40);
            let flat = ConflictGraph::build(&u);
            let sharded = ShardedConflictGraph::build(&u);
            let mut scratch = MisScratch::new(u.num_instances());
            let full: Vec<InstanceId> = u.instance_ids().collect();
            let subset: Vec<InstanceId> = u.instance_ids().filter(|d| d.index() % 2 == 0).collect();
            for active in [&full, &subset] {
                let reference = greedy_mis(&flat, active);
                let ours = sharded_greedy_mis(&sharded, active, &mut scratch);
                assert_eq!(reference, ours, "seed {seed}");
                assert!(is_maximal_independent(&flat, active, &ours));
            }
        }
    }

    #[test]
    fn sharded_mis_handles_empty_and_singleton_inputs() {
        let u = two_tree_problem().universe();
        let sharded = ShardedConflictGraph::build(&u);
        let mut scratch = MisScratch::new(u.num_instances());
        let mut stats = RoundStats::new();
        assert!(sharded_mis(
            &sharded,
            &[],
            MisStrategy::Luby { seed: 3 },
            &mut stats,
            &mut scratch
        )
        .is_empty());
        let single = vec![InstanceId::new(0)];
        let set = sharded_mis(
            &sharded,
            &single,
            MisStrategy::Luby { seed: 3 },
            &mut stats,
            &mut scratch,
        );
        assert_eq!(set, single);
        // The scratch sentinel is restored after every call.
        assert!(scratch.pos.iter().all(|&p| p == u32::MAX));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let mut stats = RoundStats::new();
        assert!(
            maximal_independent_set(&g, &[], MisStrategy::Luby { seed: 1 }, &mut stats).is_empty()
        );
        let single = vec![InstanceId::new(0)];
        let set = maximal_independent_set(&g, &single, MisStrategy::Luby { seed: 1 }, &mut stats);
        assert_eq!(set, single);
    }

    #[test]
    fn sequential_strategy_counts_one_round() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::SequentialGreedy, &mut stats);
        assert!(is_maximal_independent(&g, &active, &set));
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.mis_invocations, 1);
    }
}
