//! Maximal independent set computation on the conflict graph.
//!
//! The first phase of the distributed algorithm repeatedly computes a
//! maximal independent set among the still-unsatisfied demand instances
//! (Section 5). The paper plugs in either Luby's randomized algorithm [14]
//! (`O(log N)` rounds in expectation) or the deterministic
//! network-decomposition algorithm [17]; we implement Luby's algorithm as a
//! genuine message-passing protocol on the [`SyncSimulator`], plus a
//! sequential greedy MIS used as a deterministic baseline and for testing.

use crate::conflict::ConflictGraph;
use crate::simulator::{Agent, Outbox, SyncSimulator, Topology};
use crate::stats::RoundStats;
use fxhash::{FxHashMap, FxHashSet};
use netsched_graph::InstanceId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How to compute maximal independent sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisStrategy {
    /// Luby's randomized distributed algorithm, run on the synchronous
    /// simulator; the seed makes runs reproducible.
    Luby {
        /// Seed for the per-vertex random values.
        seed: u64,
    },
    /// A sequential greedy MIS (lowest identifier first). Counted as a
    /// single communication round; useful as a deterministic stand-in and
    /// for differential testing.
    SequentialGreedy,
}

/// State of a vertex during Luby's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LubyState {
    Active,
    InMis,
    Out,
}

/// Messages exchanged by the Luby protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LubyMsg {
    /// The random value drawn this phase.
    Value(u64),
    /// The sender joined the MIS.
    Joined,
    /// The sender dropped out (a neighbour joined).
    Dropped,
}

struct LubyAgent {
    state: LubyState,
    rng: SmallRng,
    /// Number of neighbours still active (including those whose status
    /// updates are still in flight).
    active_neighbors: FxHashSet<usize>,
    /// Value drawn in the current phase.
    my_value: u64,
    /// Values received from neighbours this phase.
    best_neighbor: Option<(u64, usize)>,
    my_index: usize,
}

impl Agent for LubyAgent {
    type Msg = LubyMsg;

    fn step(&mut self, round: usize, inbox: &[(usize, LubyMsg)]) -> Outbox<LubyMsg> {
        // Process status updates first (they can arrive in any sub-round).
        for &(from, msg) in inbox {
            match msg {
                LubyMsg::Joined => {
                    self.active_neighbors.remove(&from);
                    if self.state == LubyState::Active {
                        self.state = LubyState::Out;
                    }
                }
                LubyMsg::Dropped => {
                    self.active_neighbors.remove(&from);
                }
                LubyMsg::Value(v) => {
                    if self.active_neighbors.contains(&from) {
                        let cand = (v, from);
                        if self.best_neighbor.is_none_or(|b| cand > b) {
                            self.best_neighbor = Some(cand);
                        }
                    }
                }
            }
        }

        match round % 3 {
            0 => {
                // Sub-round A: draw and broadcast a random value.
                if self.state == LubyState::Active {
                    self.my_value = self.rng.gen();
                    self.best_neighbor = None;
                    Outbox::Broadcast(LubyMsg::Value(self.my_value))
                } else {
                    Outbox::Silent
                }
            }
            1 => {
                // Sub-round B: join the MIS if the local value is the
                // largest among active neighbours (ties broken by index).
                if self.state == LubyState::Active {
                    let me = (self.my_value, self.my_index);
                    let wins = self.best_neighbor.is_none_or(|b| me > b);
                    if wins {
                        self.state = LubyState::InMis;
                        return Outbox::Broadcast(LubyMsg::Joined);
                    }
                }
                Outbox::Silent
            }
            _ => {
                // Sub-round C: vertices knocked out this phase tell their
                // neighbours to stop waiting for them.
                if self.state == LubyState::Out && !self.active_neighbors.is_empty() {
                    let out = Outbox::Broadcast(LubyMsg::Dropped);
                    self.active_neighbors.clear();
                    return out;
                }
                Outbox::Silent
            }
        }
    }

    fn is_done(&self) -> bool {
        self.state != LubyState::Active
    }
}

/// Computes a maximal independent set of the subgraph of the conflict graph
/// induced by `active`, recording its communication cost into `stats`.
///
/// The returned set is sorted by instance id.
pub fn maximal_independent_set(
    graph: &ConflictGraph,
    active: &[InstanceId],
    strategy: MisStrategy,
    stats: &mut RoundStats,
) -> Vec<InstanceId> {
    if active.is_empty() {
        return Vec::new();
    }
    match strategy {
        MisStrategy::SequentialGreedy => {
            let set = greedy_mis(graph, active);
            stats.record_mis(1);
            set
        }
        MisStrategy::Luby { seed } => {
            // Induced subgraph: map instance ids to local indices. The
            // deterministic Fx hasher keeps the whole protocol reproducible
            // independent of the process hash seed.
            let mut local_of =
                FxHashMap::with_capacity_and_hasher(active.len(), Default::default());
            for (i, &d) in active.iter().enumerate() {
                local_of.insert(d, i);
            }
            let adjacency: Vec<Vec<usize>> = active
                .iter()
                .map(|&d| {
                    graph
                        .neighbors(d)
                        .iter()
                        .filter_map(|n| local_of.get(n).copied())
                        .collect()
                })
                .collect();
            let mut agents: Vec<LubyAgent> = (0..active.len())
                .map(|i| LubyAgent {
                    state: LubyState::Active,
                    rng: SmallRng::seed_from_u64(
                        seed ^ ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                    ),
                    active_neighbors: adjacency[i].iter().copied().collect(),
                    my_value: 0,
                    best_neighbor: None,
                    my_index: i,
                })
                .collect();
            let sim = SyncSimulator::new(Topology::new(adjacency));
            // 3 rounds per phase, O(log N) phases in expectation; allow a
            // generous deterministic cap.
            let max_rounds = 3 * (4 * (usize::BITS - active.len().leading_zeros()) as usize + 16);
            let outcome = sim.run(&mut agents, max_rounds);
            assert!(
                outcome.converged,
                "Luby MIS did not converge within {max_rounds} rounds"
            );
            stats.record_mis(outcome.stats.rounds);
            stats.record_messages(outcome.stats.messages, 1);
            let mut set: Vec<InstanceId> = agents
                .iter()
                .enumerate()
                .filter(|(_, a)| a.state == LubyState::InMis)
                .map(|(i, _)| active[i])
                .collect();
            set.sort_unstable();
            debug_assert!(is_maximal_independent(graph, active, &set));
            set
        }
    }
}

/// Sequential greedy MIS over the induced subgraph (lowest id first).
pub fn greedy_mis(graph: &ConflictGraph, active: &[InstanceId]) -> Vec<InstanceId> {
    let mut sorted: Vec<InstanceId> = active.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut chosen: Vec<InstanceId> = Vec::new();
    let mut blocked: FxHashSet<InstanceId> = FxHashSet::default();
    for &d in &sorted {
        if blocked.contains(&d) {
            continue;
        }
        chosen.push(d);
        for &n in graph.neighbors(d) {
            blocked.insert(n);
        }
    }
    chosen
}

/// Checks that `set ⊆ active` is an independent set that is maximal within
/// the subgraph induced by `active`.
pub fn is_maximal_independent(
    graph: &ConflictGraph,
    active: &[InstanceId],
    set: &[InstanceId],
) -> bool {
    let set_lookup: FxHashSet<InstanceId> = set.iter().copied().collect();
    if !graph.is_independent(set) {
        return false;
    }
    for &d in set {
        if !active.contains(&d) {
            return false;
        }
    }
    // Maximality: every active vertex not in the set has a neighbour in it.
    for &d in active {
        if set_lookup.contains(&d) {
            continue;
        }
        let dominated = graph.neighbors(d).iter().any(|n| set_lookup.contains(n));
        if !dominated {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::two_tree_problem;
    use netsched_graph::{DemandInstanceUniverse, NetworkId, TreeProblem, VertexId};
    use rand::rngs::StdRng;

    fn random_universe(seed: u64, n: usize, r: usize, m: usize) -> DemandInstanceUniverse {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = TreeProblem::new(n);
        let mut nets = Vec::new();
        for _ in 0..r {
            let edges = (1..n)
                .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                .collect();
            nets.push(p.add_network(edges).unwrap());
        }
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let access: Vec<NetworkId> =
                nets.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
            let access = if access.is_empty() {
                vec![nets[0]]
            } else {
                access
            };
            p.add_unit_demand(VertexId::new(u), VertexId::new(v), 1.0, access)
                .unwrap();
        }
        p.universe()
    }

    #[test]
    fn luby_produces_maximal_independent_sets() {
        for seed in 0..4u64 {
            let u = random_universe(seed, 30, 3, 40);
            let g = ConflictGraph::build(&u);
            let active: Vec<InstanceId> = u.instance_ids().collect();
            let mut stats = RoundStats::new();
            let set = maximal_independent_set(
                &g,
                &active,
                MisStrategy::Luby { seed: 42 + seed },
                &mut stats,
            );
            assert!(is_maximal_independent(&g, &active, &set), "seed {seed}");
            assert!(stats.rounds > 0);
            assert!(stats.mis_invocations == 1);
        }
    }

    #[test]
    fn luby_on_induced_subgraph() {
        let u = random_universe(9, 25, 2, 30);
        let g = ConflictGraph::build(&u);
        // Restrict to every third instance.
        let active: Vec<InstanceId> = u.instance_ids().filter(|d| d.index() % 3 == 0).collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::Luby { seed: 7 }, &mut stats);
        assert!(is_maximal_independent(&g, &active, &set));
        for d in &set {
            assert!(active.contains(d));
        }
    }

    #[test]
    fn greedy_is_maximal_and_deterministic() {
        let u = random_universe(3, 20, 2, 25);
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().collect();
        let a = greedy_mis(&g, &active);
        let b = greedy_mis(&g, &active);
        assert_eq!(a, b);
        assert!(is_maximal_independent(&g, &active, &a));
    }

    #[test]
    fn luby_rounds_are_logarithmic_in_practice() {
        let u = random_universe(11, 60, 3, 120);
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::Luby { seed: 5 }, &mut stats);
        assert!(is_maximal_independent(&g, &active, &set));
        let n = active.len() as f64;
        // 3 rounds per phase, expected O(log n) phases; the assertion uses a
        // very generous constant so it is robust to unlucky seeds.
        assert!(
            (stats.rounds as f64) <= 3.0 * (12.0 * n.log2() + 20.0),
            "rounds {} too large for N = {}",
            stats.rounds,
            n
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let mut stats = RoundStats::new();
        assert!(
            maximal_independent_set(&g, &[], MisStrategy::Luby { seed: 1 }, &mut stats).is_empty()
        );
        let single = vec![InstanceId::new(0)];
        let set = maximal_independent_set(&g, &single, MisStrategy::Luby { seed: 1 }, &mut stats);
        assert_eq!(set, single);
    }

    #[test]
    fn sequential_strategy_counts_one_round() {
        let u = two_tree_problem().universe();
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::SequentialGreedy, &mut stats);
        assert!(is_maximal_independent(&g, &active, &set));
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.mis_invocations, 1);
    }
}
