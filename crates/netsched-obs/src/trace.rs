//! The span tracer: RAII guards around named regions with thread-aware
//! nesting, recorded into a fixed ring buffer of recent spans.
//!
//! Tracing is **off by default** and gated by one relaxed atomic:
//! [`span`] with tracing disabled takes no timestamp, allocates nothing
//! and returns an inert guard — instrumented hot paths pay a single
//! atomic load. Enable via the `NETSCHED_OBS` environment variable
//! (`on`/`1`/`true`, read once) or programmatically with [`set_tracing`].
//!
//! Enabled spans record name, thread, nesting depth, start offset and
//! duration into a global ring of the [`RING_CAPACITY`] most recent
//! spans ([`recent_spans`] drains a copy, oldest first). The ring is a
//! debugging aid — a flight recorder for "what did the last epoch do" —
//! not a streaming export.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// How many recent spans the global ring retains.
pub const RING_CAPACITY: usize = 1024;

static TRACING: AtomicBool = AtomicBool::new(false);
static TRACING_INIT: Once = Once::new();

/// `true` when span tracing is enabled (via `NETSCHED_OBS=on|1|true`,
/// read once on first call, or [`set_tracing`]).
pub fn tracing_enabled() -> bool {
    TRACING_INIT.call_once(|| {
        if let Ok(value) = std::env::var("NETSCHED_OBS") {
            let on = matches!(value.to_ascii_lowercase().as_str(), "on" | "1" | "true");
            TRACING.store(on, Ordering::Relaxed);
        }
    });
    TRACING.load(Ordering::Relaxed)
}

/// Enables or disables span tracing, overriding the environment default.
pub fn set_tracing(on: bool) {
    // Mark the environment consulted so a later `tracing_enabled` cannot
    // overwrite this explicit choice.
    TRACING_INIT.call_once(|| {});
    TRACING.store(on, Ordering::Relaxed);
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's name (static, by construction of [`span`]).
    pub name: &'static str,
    /// Dense id of the recording thread (assigned on first span).
    pub thread: u64,
    /// Nesting depth within the recording thread (0 = top level).
    pub depth: u32,
    /// Start offset in nanoseconds since the process's first span.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

struct Ring {
    slots: Vec<SpanRecord>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    /// Total spans ever recorded (≥ `slots.len()`).
    total: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            slots: Vec::with_capacity(RING_CAPACITY),
            next: 0,
            total: 0,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    THREAD_ID.with(|id| *id)
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    depth: u32,
}

/// RAII guard of one [`span`]; records the span on drop. Inert (and
/// cost-free to drop) when tracing was disabled at entry.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration_ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: active.name,
            thread: thread_id(),
            depth: active.depth,
            start_ns: active.start_ns,
            duration_ns,
        };
        let mut ring = ring().lock().expect("span ring poisoned");
        ring.total += 1;
        if ring.slots.len() < RING_CAPACITY {
            ring.slots.push(record);
            ring.next = ring.slots.len() % RING_CAPACITY;
        } else {
            let next = ring.next;
            ring.slots[next] = record;
            ring.next = (next + 1) % RING_CAPACITY;
        }
    }
}

/// Opens a span; the returned guard records it when dropped. When tracing
/// is disabled this takes no timestamp and returns an inert guard — one
/// relaxed atomic load total.
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { active: None };
    }
    let start_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start: Instant::now(),
            start_ns,
            depth,
        }),
    }
}

/// The ring's recent spans, oldest first.
pub fn recent_spans() -> Vec<SpanRecord> {
    let ring = ring().lock().expect("span ring poisoned");
    if ring.slots.len() < RING_CAPACITY {
        ring.slots.clone()
    } else {
        let mut out = Vec::with_capacity(RING_CAPACITY);
        out.extend_from_slice(&ring.slots[ring.next..]);
        out.extend_from_slice(&ring.slots[..ring.next]);
        out
    }
}

/// Total spans ever recorded (including ones the ring has overwritten).
pub fn spans_recorded() -> u64 {
    ring().lock().expect("span ring poisoned").total
}

/// Empties the ring (the total recorded count is kept).
pub fn clear_spans() {
    let mut ring = ring().lock().expect("span ring poisoned");
    ring.slots.clear();
    ring.next = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the global tracer state: the enable/disable halves
    // must not interleave with each other across test threads.
    #[test]
    fn spans_record_when_enabled_and_vanish_when_disabled() {
        set_tracing(true);
        clear_spans();
        let before = spans_recorded();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        let spans = recent_spans();
        assert_eq!(spans_recorded() - before, 2);
        // Inner drops first, so it is recorded first.
        let inner = spans[spans.len() - 2];
        let outer = spans[spans.len() - 1];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(outer.name, "test.outer");
        assert_eq!(outer.depth, inner.depth.saturating_sub(1));
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);

        set_tracing(false);
        let before = spans_recorded();
        {
            let _quiet = span("test.quiet");
        }
        assert_eq!(spans_recorded(), before, "disabled spans must not record");

        // Ring wrap: overfill and check the ring keeps the newest spans.
        set_tracing(true);
        clear_spans();
        for _ in 0..RING_CAPACITY + 10 {
            let _s = span("test.wrap");
        }
        let spans = recent_spans();
        assert_eq!(spans.len(), RING_CAPACITY);
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        set_tracing(false);
    }
}
