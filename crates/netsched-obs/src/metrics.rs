//! The metrics registry: atomic counters and gauges plus log-linear
//! latency histograms with percentile extraction, snapshotted into a
//! [`MetricsReport`] with JSON and Prometheus-text exporters.
//!
//! # Hot-path cost model
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s around plain
//! atomics: recording is a handful of relaxed atomic operations and **never
//! allocates**, so instrumented hot loops stay allocation-free (the root
//! `alloc_regression` suite pins this). The registry itself is only locked
//! on registration (get-or-create by name) and on snapshot — both cold
//! paths.
//!
//! # Histogram layout
//!
//! [`Histogram`] buckets values (by convention: latencies in nanoseconds)
//! log-linearly, HDR-style: values below 16 get exact unit buckets; above,
//! each power-of-two octave is split into 8 equal sub-buckets, so any
//! recorded value lands in a bucket whose width is at most 1/8 of its lower
//! bound (≤ 12.5 % relative quantile error, exact below 16). 496 buckets
//! cover the full `u64` range. Quantiles report the bucket's upper bound
//! clamped to the exact recorded maximum — they never under-report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Values below this get exact unit-width buckets.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power-of-two octave above [`LINEAR_MAX`].
const SUB_BUCKETS: usize = 8;
/// 16 exact buckets + 60 octaves × 8 sub-buckets cover all of `u64`.
const NUM_BUCKETS: usize = 496;

/// The bucket a value lands in.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize; // ≥ 4
        let shift = msb - 3;
        shift * SUB_BUCKETS + (value >> shift) as usize // (v >> shift) ∈ [8, 16)
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        index as u64
    } else {
        let shift = index / SUB_BUCKETS - 1;
        let sub = (index - shift * SUB_BUCKETS) as u64; // ∈ [8, 16)
        sub << shift
    }
}

/// Width of a bucket (its value count).
fn bucket_width(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        1
    } else {
        1u64 << (index / SUB_BUCKETS - 1)
    }
}

/// A monotonically increasing `u64` counter. Cloning shares the underlying
/// atomic — hold the clone in your hot structure and `inc` it lock-free.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (queue depths, live counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-linear latency histogram (see the [module docs](self) for the
/// bucket layout). Recording is a few relaxed atomic adds; quantile
/// extraction walks the 496 buckets and is meant for snapshots, not hot
/// paths.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                buckets: buckets.into_boxed_slice(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one value (by convention, nanoseconds). Lock- and
    /// allocation-free.
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records `count` occurrences of the same value in one shot — four
    /// relaxed atomic operations total instead of four per occurrence.
    /// This is the flush half of a local-tally pattern: a hot loop that
    /// would otherwise record millions of identical samples (wait-free
    /// schedule readers tallying staleness per read) counts locally and
    /// flushes here at its own cadence. No-op when `count` is 0.
    pub fn record_many(&self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.inner.buckets[bucket_index(value)].fetch_add(count, Ordering::Relaxed);
        self.inner.count.fetch_add(count, Ordering::Relaxed);
        self.inner
            .sum
            .fetch_add(value.saturating_mul(count), Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating).
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records a duration given in (non-negative) seconds, as nanoseconds.
    pub fn record_secs(&self, seconds: f64) {
        self.record((seconds.max(0.0) * 1e9) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) of the recorded values: the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` value, clamped to
    /// the exact maximum — exact for values below 16, within 12.5 % above.
    /// Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                let upper = bucket_lower(i) + (bucket_width(i) - 1);
                return upper.min(self.max());
            }
        }
        // Snapshot raced with a concurrent record: fall back to the max.
        self.max()
    }

    /// A consistent-enough point-in-time summary (concurrent records may
    /// land between the atomic reads; totals are exact once writers pause).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Median (bucket-resolution; see [`Histogram::quantile`]).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

/// A cloneable handle to one shared metrics namespace. Registration
/// (get-or-create by static name) takes a short mutex; the returned
/// handles are lock-free. [`ObsRegistry::snapshot`] freezes everything
/// into a [`MetricsReport`].
#[derive(Clone, Default)]
pub struct ObsRegistry {
    inner: Arc<RegistryInner>,
}

impl ObsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("obs counter lock poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("obs gauge lock poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("obs histogram lock poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Snapshots every registered metric into a [`MetricsReport`]
    /// (name-sorted; histogram quantiles computed now).
    pub fn snapshot(&self) -> MetricsReport {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("obs counter lock poisoned")
            .iter()
            .map(|(&name, c)| (name.to_string(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("obs gauge lock poisoned")
            .iter()
            .map(|(&name, g)| (name.to_string(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("obs histogram lock poisoned")
            .iter()
            .map(|(&name, h)| (name.to_string(), h.snapshot()))
            .collect();
        MetricsReport {
            counters,
            gauges,
            histograms,
        }
    }
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A frozen snapshot of one [`ObsRegistry`]: every counter, gauge and
/// histogram summary, name-sorted, with JSON and Prometheus exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Counters by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Minimal JSON string escape (metric names are plain identifiers, but the
/// exporter must never emit malformed JSON).
fn escape_json(name: &str, out: &mut String) {
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Rewrites a metric name into the Prometheus exposition charset
/// (`[a-zA-Z0-9_]`, with a `netsched_` prefix).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("netsched_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

impl MetricsReport {
    /// The counter recorded under `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge recorded under `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram summary recorded under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the report as one JSON document:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,p50,p95,p99}}}`.
    /// All values are integers (histograms are in nanoseconds), so the
    /// document round-trips through any JSON parser without float drift.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str(&format!(
                "\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.max, h.p50, h.p95, h.p99
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the report in the Prometheus text exposition format:
    /// counters and gauges as their native types, histograms as summaries
    /// with `quantile` labels plus `_sum`/`_count`/`_max` series. Names
    /// are prefixed `netsched_` and sanitized to the exposition charset;
    /// histogram values are nanoseconds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            out.push_str(&format!(
                "# TYPE {name} summary\n\
                 {name}{{quantile=\"0.5\"}} {}\n\
                 {name}{{quantile=\"0.95\"}} {}\n\
                 {name}{{quantile=\"0.99\"}} {}\n\
                 {name}_sum {}\n\
                 {name}_count {}\n\
                 {name}_max {}\n",
                h.p50, h.p95, h.p99, h.sum, h.count, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_16_and_nest_above() {
        // The linear range: one bucket per value.
        for v in 0..LINEAR_MAX {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_width(i), 1);
        }
        // Every bucket's range contains exactly the values that index into
        // it, and consecutive buckets tile the number line.
        for i in 0..NUM_BUCKETS {
            let lower = bucket_lower(i);
            assert_eq!(bucket_index(lower), i, "lower bound of bucket {i}");
            let upper = lower + (bucket_width(i) - 1);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_lower(i + 1), upper + 1, "tiling at bucket {i}");
            } else {
                assert_eq!(upper, u64::MAX);
            }
        }
        // Octave boundaries land on fresh buckets.
        for shift in 4..64 {
            let v = 1u64 << shift;
            assert_eq!(bucket_lower(bucket_index(v)), v);
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1);
        }
        // Relative bucket error is bounded by 1/8 everywhere.
        for i in LINEAR_MAX as usize..NUM_BUCKETS {
            assert!(bucket_width(i) * 8 <= bucket_lower(i));
        }
    }

    #[test]
    fn percentiles_are_exact_in_the_linear_range() {
        let h = Histogram::default();
        // 1..=15, ten of each: ranks are exact because buckets are exact.
        for v in 1..=15u64 {
            for _ in 0..10 {
                h.record(v);
            }
        }
        assert_eq!(h.count(), 150);
        assert_eq!(h.sum(), 10 * (1..=15u64).sum::<u64>());
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.5), 8); // rank 75 → the 8th decile block
        assert_eq!(h.quantile(1.0 / 150.0), 1);
        assert_eq!(h.quantile(1.0), 15);
        let snap = h.snapshot();
        assert_eq!(snap.p50, 8);
        assert_eq!(snap.p95, 15); // rank ⌈142.5⌉ = 143 → value 15
        assert_eq!(snap.p99, 15);
        assert!((snap.mean() - h.sum() as f64 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_above_the_linear_range_stay_within_bucket_error() {
        let h = Histogram::default();
        for v in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        for q in [0.5, 0.95, 0.99] {
            let got = h.quantile(q);
            assert!(got <= h.max());
            assert!(got > 0);
        }
        // p99 of 5 values is the max bucket, clamped to the exact max.
        assert_eq!(h.quantile(0.99), 1_000_000);
        // The median (rank 3) is 10_000's bucket: within 12.5 % above it.
        let p50 = h.quantile(0.5);
        assert!((10_000..=11_250).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn record_many_is_equivalent_to_repeated_records() {
        let a = Histogram::default();
        let b = Histogram::default();
        for _ in 0..37 {
            a.record(1_000);
        }
        a.record(5);
        b.record_many(1_000, 37);
        b.record_many(5, 1);
        b.record_many(9_999, 0); // no-op
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(b.count(), 38);
        assert_eq!(b.sum(), 37 * 1_000 + 5);
    }

    #[test]
    fn empty_histograms_report_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn registry_handles_share_state_by_name() {
        let reg = ObsRegistry::new();
        let a = reg.counter("epochs");
        let b = reg.counter("epochs");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("epochs").get(), 3);
        reg.gauge("depth").set(-4);
        assert_eq!(reg.gauge("depth").get(), -4);
        reg.histogram("lat").record(7);
        assert_eq!(reg.histogram("lat").count(), 1);
        let report = reg.snapshot();
        assert_eq!(report.counter("epochs"), Some(3));
        assert_eq!(report.gauge("depth"), Some(-4));
        assert_eq!(report.histogram("lat").unwrap().max, 7);
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn concurrent_recording_keeps_totals_exact() {
        let reg = ObsRegistry::new();
        const THREADS: u64 = 8;
        const OPS: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let counter = reg.counter("ops");
                let gauge = reg.gauge("last");
                let hist = reg.histogram("values");
                scope.spawn(move || {
                    for i in 0..OPS {
                        counter.inc();
                        gauge.set(i as i64);
                        hist.record(t * OPS + i);
                    }
                });
            }
        });
        let report = reg.snapshot();
        assert_eq!(report.counter("ops"), Some(THREADS * OPS));
        let h = report.histogram("values").unwrap();
        assert_eq!(h.count, THREADS * OPS);
        // Σ (t·OPS + i) over all threads and iterations, exactly.
        let expected: u64 = (0..THREADS)
            .map(|t| (0..OPS).map(|i| t * OPS + i).sum::<u64>())
            .sum();
        assert_eq!(h.sum, expected);
        assert_eq!(h.max, THREADS * OPS - 1);
    }

    #[test]
    fn exporters_render_every_metric() {
        let reg = ObsRegistry::new();
        reg.counter("wal.append_retries").add(2);
        reg.gauge("service.queue_depth").set(5);
        reg.histogram("epoch.step_ns").record(12);
        let report = reg.snapshot();

        let json = report.to_json();
        assert!(json.contains("\"wal.append_retries\":2"), "{json}");
        assert!(json.contains("\"service.queue_depth\":5"), "{json}");
        assert!(json.contains("\"epoch.step_ns\":{"), "{json}");
        assert!(json.contains("\"p99\":12"), "{json}");

        let prom = report.to_prometheus();
        assert!(
            prom.contains("# TYPE netsched_wal_append_retries counter"),
            "{prom}"
        );
        assert!(prom.contains("netsched_service_queue_depth 5"), "{prom}");
        assert!(
            prom.contains("netsched_epoch_step_ns{quantile=\"0.99\"} 12"),
            "{prom}"
        );
        assert!(prom.contains("netsched_epoch_step_ns_count 1"), "{prom}");
    }
}
