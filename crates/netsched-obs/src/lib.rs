//! Observability spine for `netsched`: a lock-cheap metrics registry and a
//! span tracer, hand-rolled with zero dependencies (the workspace's
//! vendored-shim discipline — no crates.io).
//!
//! # Metrics
//!
//! [`ObsRegistry`] hands out [`Counter`]s, [`Gauge`]s and log-linear
//! latency [`Histogram`]s by static name. Handles are `Arc`'d atomics:
//! recording is a few relaxed atomic operations, lock- and
//! allocation-free, so hot loops can be instrumented without budget
//! anxiety (the root `alloc_regression` suite pins the zero-allocation
//! claim). [`ObsRegistry::snapshot`] freezes everything into a
//! [`MetricsReport`] with exact counts and p50/p95/p99/max latency
//! summaries, exportable as JSON ([`MetricsReport::to_json`]) or
//! Prometheus text ([`MetricsReport::to_prometheus`]).
//!
//! Histograms bucket nanoseconds log-linearly (exact below 16 ns, ≤ 12.5 %
//! relative bucket error above, full `u64` range in 496 buckets); quantiles
//! report bucket upper bounds clamped to the exact maximum, so they never
//! under-report a latency. See [`metrics`] for the layout.
//!
//! # Spans
//!
//! [`span!`] opens an RAII region guard:
//!
//! ```
//! netsched_obs::set_tracing(true);
//! {
//!     let _epoch = netsched_obs::span!("epoch.step");
//!     let _solve = netsched_obs::span!("epoch.solve"); // nested
//! }
//! let spans = netsched_obs::recent_spans();
//! assert!(spans.iter().any(|s| s.name == "epoch.solve" && s.depth == 1));
//! netsched_obs::set_tracing(false);
//! ```
//!
//! Tracing is off by default: a disabled [`span!`] costs one relaxed
//! atomic load, takes no timestamp and allocates nothing. Enable with
//! `NETSCHED_OBS=on` (read once) or [`set_tracing`]. Completed spans land
//! in a global ring of the most recent [`trace::RING_CAPACITY`] spans —
//! a flight recorder, drained with [`recent_spans`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsReport, ObsRegistry};
pub use trace::{
    clear_spans, recent_spans, set_tracing, span, spans_recorded, tracing_enabled, SpanGuard,
    SpanRecord,
};

/// Opens a named span and returns its RAII guard; sugar for
/// [`trace::span`]. Bind the guard (`let _span = span!("...")`) — an
/// unbound guard drops immediately and measures nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}
