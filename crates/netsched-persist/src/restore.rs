//! Crash recovery: newest valid snapshot + write-ahead log replay.

use std::path::{Path, PathBuf};

use netsched_service::{parse_wal_record, DemandEvent, ServiceSession, WalRecord};
use netsched_workloads::framing::{scan_frames, FRAME_HEADER_LEN};
use netsched_workloads::json::JsonValue;

use crate::durable::SNAPSHOT_PREFIX;
use crate::wal::WAL_FILE;

/// What a [`restore`] recovered and what it had to discard. Every count
/// is surfaced so operators can distinguish a clean restart (everything
/// zero except `replayed_epochs`) from one that lost data to corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// The epoch of the snapshot the session was rebuilt from.
    pub snapshot_epoch: u64,
    /// Newer snapshot files that failed to read, parse or validate and
    /// were skipped in favor of an older one.
    pub dropped_snapshots: usize,
    /// Log records replayed through the normal `step` path.
    pub replayed_epochs: u64,
    /// Valid log records skipped because their epoch was already covered
    /// by the snapshot.
    pub skipped_records: usize,
    /// Log records lost to the corrupt suffix (truncated tail, flipped
    /// checksum, undecodable payload or an epoch discontinuity): the
    /// offending record plus the structurally plausible ones after it.
    pub dropped_records: usize,
    /// Batch records skipped because a later record cancelled them: a
    /// rollback tombstone (the batch was quarantined and never executed)
    /// or a subsequent record re-using the same epoch (the quarantine's
    /// tombstone append itself failed, so the retried batch supersedes
    /// the dead record).
    pub rolled_back_records: usize,
    /// The recovered session's epoch (`snapshot_epoch + replayed_epochs`).
    pub final_epoch: u64,
}

/// A recovered session plus the restore's accounting.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The recovered session. No journal is attached — callers resuming
    /// durable serving should use
    /// [`DurableSession::recover`](crate::DurableSession::recover)
    /// instead, which re-attaches the log.
    pub session: ServiceSession,
    /// What was recovered and what was discarded.
    pub report: RestoreReport,
}

/// Rebuilds the session a crash interrupted, **read-only** (log and
/// snapshot files are left untouched):
///
/// 1. snapshots are tried newest-first; the first one that reads, parses
///    and shape-validates wins (failures are counted, not fatal);
/// 2. the log is cut to its longest valid frame prefix
///    ([`scan_frames`] — a truncated tail, a flipped checksum byte and a
///    zero-length file all land here, never in a panic);
/// 3. the decoded records are resolved against quarantines: a rollback
///    tombstone cancels the dead batch record it names, and a record
///    re-using an earlier record's epoch supersedes it (the tombstone
///    append itself failed mid-quarantine) — cancelled records are
///    counted in [`RestoreReport::rolled_back_records`], never replayed;
/// 4. resolved records at or before the snapshot's epoch are skipped,
///    the rest replay in order through the normal
///    [`step`](ServiceSession::step) path — so the recovered session
///    inherits the session's own equivalence contract (cold:
///    byte-identical; warm: certificate-equivalent).
///
/// Fails only when no snapshot in the directory is valid or a valid
/// record fails to replay (which indicates a log/snapshot mismatch, not
/// ordinary corruption).
pub fn restore(dir: impl AsRef<Path>) -> Result<RecoveredSession, String> {
    let (session, report, _) = restore_inner(dir.as_ref())?;
    Ok(RecoveredSession { session, report })
}

/// [`restore`] plus the byte length of the log's **replayable** prefix —
/// the offset of the first dropped record (corrupt frame, undecodable
/// payload or epoch discontinuity), or the full valid frame length when
/// nothing was dropped — which
/// [`DurableSession::recover`](crate::DurableSession::recover) truncates
/// to before appending new records, so the next recovery does not trip
/// over the same dead suffix.
pub(crate) fn restore_inner(dir: &Path) -> Result<(ServiceSession, RestoreReport, u64), String> {
    let load_start = std::time::Instant::now();
    let mut snapshots = list_snapshots(dir)?;
    snapshots.sort_by_key(|s| std::cmp::Reverse(s.0));
    let mut dropped_snapshots = 0usize;
    let mut restored = None;
    for (_, path) in &snapshots {
        match load_snapshot(path) {
            Ok(session) => {
                restored = Some(session);
                break;
            }
            Err(_) => dropped_snapshots += 1,
        }
    }
    let mut session =
        restored.ok_or_else(|| format!("no valid snapshot under {}", dir.display()))?;
    let snapshot_epoch = session.epoch();
    session
        .obs_registry()
        .histogram("restore.snapshot_load_ns")
        .record_duration(load_start.elapsed());

    // A missing log is a valid empty log (the session crashed before its
    // first append).
    let scan_start = std::time::Instant::now();
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap_or_default();
    let scan = scan_frames(&bytes);
    let mut dropped_records = scan.dropped_frames;
    let mut rolled_back_records = 0usize;
    // Byte offset at which the replayable prefix ends; `None` while no
    // record has been dropped.
    let mut truncate_at: Option<usize> = None;

    // Resolve quarantines before replaying anything: the stack holds the
    // records that survive, strictly increasing in epoch. A rollback
    // tombstone for epoch `e` pops the dead record(s) with epoch ≥ `e`;
    // so does a batch record re-using an earlier epoch (the tombstone
    // append itself failed mid-quarantine, and the retried batch
    // supersedes the dead record).
    struct Resolved {
        offset: usize,
        epoch: u64,
        batch: Vec<DemandEvent>,
    }
    let mut resolved: Vec<Resolved> = Vec::new();
    let mut offset = 0usize;
    for (i, frame) in scan.frames.iter().enumerate() {
        let frame_offset = offset;
        offset += FRAME_HEADER_LEN + frame.len();
        let decoded = std::str::from_utf8(frame)
            .map_err(|e| e.to_string())
            .and_then(JsonValue::parse)
            .and_then(|doc| parse_wal_record(&doc));
        match decoded {
            Ok(WalRecord::Batch { epoch, batch }) => {
                while resolved.last().is_some_and(|r| r.epoch >= epoch) {
                    resolved.pop();
                    rolled_back_records += 1;
                }
                resolved.push(Resolved {
                    offset: frame_offset,
                    epoch,
                    batch,
                });
            }
            Ok(WalRecord::Rollback { epoch }) => {
                while resolved.last().is_some_and(|r| r.epoch >= epoch) {
                    resolved.pop();
                    rolled_back_records += 1;
                }
            }
            Err(_) => {
                // A CRC-valid frame that does not decode as a record:
                // treat it — and everything after it — as the corrupt
                // suffix.
                dropped_records += scan.frames.len() - i;
                truncate_at = Some(frame_offset);
                break;
            }
        }
    }

    session
        .obs_registry()
        .histogram("restore.scan_ns")
        .record_duration(scan_start.elapsed());

    let replay_start = std::time::Instant::now();
    let mut skipped_records = 0usize;
    let mut replayed_epochs = 0u64;
    for (i, record) in resolved.iter().enumerate() {
        if record.epoch <= snapshot_epoch {
            skipped_records += 1;
            continue;
        }
        if record.epoch != session.epoch() + 1 {
            // An epoch gap means the log and the snapshot disagree about
            // history; nothing after the gap can be applied soundly. The
            // gapped record precedes any already-recorded cut, so it
            // becomes the truncation point.
            dropped_records += resolved.len() - i;
            truncate_at = Some(record.offset);
            break;
        }
        session
            .step(&record.batch)
            .map_err(|e| format!("replaying logged epoch {} failed: {e}", record.epoch))?;
        replayed_epochs += 1;
    }

    session
        .obs_registry()
        .histogram("restore.replay_ns")
        .record_duration(replay_start.elapsed());

    let report = RestoreReport {
        snapshot_epoch,
        dropped_snapshots,
        replayed_epochs,
        skipped_records,
        dropped_records,
        rolled_back_records,
        final_epoch: session.epoch(),
    };
    let replayable_len = truncate_at.unwrap_or(scan.valid_len) as u64;
    Ok((session, report, replayable_len))
}

/// Every `snapshot-<epoch>.json` in the directory, unordered.
fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut snapshots = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(epoch) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        snapshots.push((epoch, entry.path()));
    }
    Ok(snapshots)
}

fn load_snapshot(path: &Path) -> Result<ServiceSession, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = JsonValue::parse(&text)?;
    ServiceSession::from_snapshot(&doc)
}
