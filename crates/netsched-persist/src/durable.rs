//! [`DurableSession`]: a serving session whose epochs survive crashes.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use netsched_core::Budget;
use netsched_service::{
    wal_record, CompactionReport, DemandEvent, ScheduleDelta, ServiceError, ServiceSession,
};
use netsched_workloads::FaultPlan;

use crate::restore::restore_inner;
use crate::wal::{
    compact_wal, install_faults, install_obs, open_wal, sync_wal, wal_health, WalHandle,
    WalJournal, WAL_FILE,
};
use crate::{Durability, PersistConfig, PersistError, RestoreReport, WalHealth};

/// Snapshot files are named `snapshot-<epoch>.json`, epoch zero-padded so
/// lexicographic directory order equals epoch order.
pub const SNAPSHOT_PREFIX: &str = "snapshot-";

/// The snapshot file path for `epoch` inside `dir`.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{epoch:020}.json"))
}

/// A [`ServiceSession`] wrapped in the durable serving tier: every
/// accepted batch is journaled to the directory's write-ahead log before
/// it executes, snapshots are written on an epoch cadence, and
/// [`DurableSession::recover`] resumes after a crash from the newest
/// valid snapshot plus log replay. See the [crate docs](crate) for the
/// recovery contract and the fsync policies.
pub struct DurableSession {
    session: ServiceSession,
    dir: PathBuf,
    wal: WalHandle,
    config: PersistConfig,
    last_snapshot_epoch: u64,
    /// Dump a `MetricsReport` JSON to `<dir>/metrics/` every this many
    /// epochs (`0` = off; see
    /// [`set_metrics_dump_every`](DurableSession::set_metrics_dump_every)).
    metrics_dump_every: u64,
    /// The epoch of the most recent metrics dump.
    last_metrics_dump_epoch: u64,
}

impl DurableSession {
    /// Starts a durable session in `dir` (created if absent): writes the
    /// initial snapshot (so a restore is possible before the first
    /// cadence snapshot), opens the write-ahead log for appending and
    /// attaches the journal. The directory should be empty or belong to
    /// this session's own history — recovering someone else's log into a
    /// fresh session is what [`DurableSession::recover`] is for.
    pub fn create(
        dir: impl AsRef<Path>,
        mut session: ServiceSession,
        config: PersistConfig,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| PersistError::Io {
            op: "creating",
            path: dir.clone(),
            source: e,
        })?;
        let wal = open_wal(&dir, config.durability).map_err(PersistError::Wal)?;
        install_obs(&wal, session.obs_registry());
        session.attach_journal(Box::new(WalJournal::new(wal.clone())));
        let mut this = Self {
            last_snapshot_epoch: session.epoch(),
            last_metrics_dump_epoch: session.epoch(),
            session,
            dir,
            wal,
            config,
            metrics_dump_every: 0,
        };
        this.snapshot_now()?;
        Ok(this)
    }

    /// Resumes a durable session from `dir` after a crash: restores
    /// (newest valid snapshot + log replay, see [`crate::restore`]),
    /// truncates the log's non-replayable suffix — a corrupt tail, an
    /// undecodable record or an epoch discontinuity — so new records
    /// append after the last record that actually replayed (and the next
    /// recovery cannot trip over the same dead suffix), re-attaches the
    /// journal and returns the session together with the restore's
    /// accounting.
    pub fn recover(
        dir: impl AsRef<Path>,
        config: PersistConfig,
    ) -> Result<(Self, RestoreReport), PersistError> {
        let dir = dir.as_ref().to_path_buf();
        let (mut session, report, valid_len) =
            restore_inner(&dir).map_err(PersistError::Restore)?;
        let wal_path = dir.join(WAL_FILE);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| PersistError::Io {
                op: "opening",
                path: wal_path.clone(),
                source: e,
            })?;
        let current = file
            .metadata()
            .map_err(|e| PersistError::Io {
                op: "inspecting",
                path: wal_path.clone(),
                source: e,
            })?
            .len();
        if current > valid_len {
            file.set_len(valid_len).map_err(|e| PersistError::Io {
                op: "truncating the corrupt suffix of",
                path: wal_path.clone(),
                source: e,
            })?;
            file.sync_data().map_err(|e| PersistError::Io {
                op: "syncing the truncated",
                path: wal_path.clone(),
                source: e,
            })?;
        }
        drop(file);
        let wal = open_wal(&dir, config.durability).map_err(PersistError::Wal)?;
        install_obs(&wal, session.obs_registry());
        session.attach_journal(Box::new(WalJournal::new(wal.clone())));
        Ok((
            Self {
                last_snapshot_epoch: report.snapshot_epoch,
                last_metrics_dump_epoch: session.epoch(),
                session,
                dir,
                wal,
                config,
                metrics_dump_every: 0,
            },
            report,
        ))
    }

    /// Admits one epoch batch durably: the attached journal appends the
    /// record before the session mutates (a journal failure — an append
    /// that kept failing after its retries — aborts with the session
    /// unchanged); when the **effective** durability is
    /// [`Durability::Epoch`] the log is fsynced after the step succeeds;
    /// on the snapshot cadence a snapshot is written. Post-step
    /// persistence failures are reported as [`ServiceError::Journal`] —
    /// the in-memory session has already advanced, but its durability
    /// guarantee could not be met. Persistent fsync failures never reach
    /// this error: they downgrade the effective durability instead (see
    /// the [crate docs](crate) and [`DurableSession::health`]).
    pub fn step(&mut self, batch: &[DemandEvent]) -> Result<ScheduleDelta, ServiceError> {
        let delta = self.session.step(batch)?;
        self.after_step()?;
        Ok(delta)
    }

    /// [`step`](DurableSession::step) under a cooperative
    /// [`Budget`] with panic quarantine, plus **quarantine forensics**: a
    /// quarantined batch is persisted to
    /// `<dir>/quarantine/epoch-<N>/` — `batch.json` (the poisoned batch
    /// as a replayable [`wal_record`] document), `panic.txt` (the panic
    /// payload) and `metrics.json` (the epoch's
    /// [`MetricsReport`](netsched_obs::MetricsReport)) — before the error
    /// returns, so the offending input survives for offline triage even
    /// though the log's record was tombstoned. Forensics writes are
    /// best-effort: a full disk must not turn a survived quarantine into
    /// a failed epoch.
    pub fn step_with_deadline(
        &mut self,
        batch: &[DemandEvent],
        budget: &Budget,
    ) -> Result<ScheduleDelta, ServiceError> {
        // The epoch the batch would have advanced the session to — read
        // before the step, because a quarantine restores the counter.
        let dead_epoch = self.session.epoch() + 1;
        match self.session.step_with_deadline(batch, budget) {
            Ok(delta) => {
                self.after_step()?;
                Ok(delta)
            }
            Err(ServiceError::Quarantined { reason }) => {
                self.dump_quarantine(dead_epoch, batch, &reason);
                Err(ServiceError::Quarantined { reason })
            }
            Err(other) => Err(other),
        }
    }

    /// The post-step durability work shared by every stepping surface:
    /// the epoch-cadence fsync, the snapshot cadence and the metrics-dump
    /// cadence.
    fn after_step(&mut self) -> Result<(), ServiceError> {
        if self.health().effective_durability == Durability::Epoch {
            sync_wal(&self.wal, self.session.epoch()).map_err(ServiceError::Journal)?;
        }
        if self.config.snapshot_every > 0
            && self.session.epoch() - self.last_snapshot_epoch >= self.config.snapshot_every
        {
            self.snapshot_now()
                .map_err(|e| ServiceError::Journal(e.to_string()))?;
        }
        if self.metrics_dump_every > 0
            && self.session.epoch() - self.last_metrics_dump_epoch >= self.metrics_dump_every
        {
            self.dump_metrics_now();
            self.last_metrics_dump_epoch = self.session.epoch();
        }
        Ok(())
    }

    /// Enables (or, with `0`, disables) the periodic metrics dump: every
    /// `every` epochs the session registry's
    /// [`MetricsReport`](netsched_obs::MetricsReport) is written as JSON
    /// to `<dir>/metrics/epoch-<N>.json`. Dumps are best-effort
    /// observability output — an unwritable file never fails the epoch.
    pub fn set_metrics_dump_every(&mut self, every: u64) {
        self.metrics_dump_every = every;
        self.last_metrics_dump_epoch = self.session.epoch();
    }

    /// Writes the current metrics report to
    /// `<dir>/metrics/epoch-<N>.json` now, best-effort.
    pub fn dump_metrics_now(&self) {
        let dir = self.dir.join("metrics");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("epoch-{:020}.json", self.session.epoch()));
        let _ = std::fs::write(path, self.session.obs_registry().snapshot().to_json());
    }

    /// Persists a quarantined batch's forensics bundle, best-effort.
    fn dump_quarantine(&self, dead_epoch: u64, batch: &[DemandEvent], reason: &str) {
        let dir = self
            .dir
            .join("quarantine")
            .join(format!("epoch-{dead_epoch}"));
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let _ = std::fs::write(
            dir.join("batch.json"),
            wal_record(dead_epoch, batch).render(),
        );
        let _ = std::fs::write(dir.join("panic.txt"), reason);
        let _ = std::fs::write(
            dir.join("metrics.json"),
            self.session.obs_registry().snapshot().to_json(),
        );
    }

    /// Writes a snapshot now (outside the cadence): compacts the session
    /// ([`ServiceSession::compact`] — the lifecycle policy dropping stale
    /// split cores and oversized warm replay stacks), renders the
    /// versioned document and writes it atomically (temp file + rename,
    /// fsynced unless running [`Durability::None`]). Returns what the
    /// compaction shed.
    ///
    /// A successful snapshot also **compacts the on-disk history**,
    /// mirroring the in-memory policy: log records at or before the
    /// *previous* snapshot's epoch are dropped from the write-ahead log
    /// (every retained restore path — this snapshot, or a fallback to the
    /// previous one — replays only records after that epoch), and
    /// snapshot files older than the previous one are deleted. The log
    /// and the snapshot directory therefore stay bounded at roughly two
    /// cadences of history instead of growing without bound.
    pub fn snapshot_now(&mut self) -> Result<CompactionReport, PersistError> {
        let compaction = self.session.compact();
        let doc = self.session.snapshot();
        let epoch = self.session.epoch();
        let path = snapshot_path(&self.dir, epoch);
        let tmp = path.with_extension("json.tmp");
        {
            let mut file = File::create(&tmp).map_err(|e| PersistError::Io {
                op: "creating",
                path: tmp.clone(),
                source: e,
            })?;
            file.write_all(doc.render().as_bytes())
                .map_err(|e| PersistError::Io {
                    op: "writing",
                    path: tmp.clone(),
                    source: e,
                })?;
            if self.config.durability != Durability::None {
                file.sync_all().map_err(|e| PersistError::Io {
                    op: "syncing",
                    path: tmp.clone(),
                    source: e,
                })?;
            }
        }
        std::fs::rename(&tmp, &path).map_err(|e| PersistError::Io {
            op: "publishing",
            path: path.clone(),
            source: e,
        })?;
        if self.config.durability != Durability::None {
            // Make the rename itself durable; best-effort on filesystems
            // that refuse directory fsyncs.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        // The snapshot is durable: shed the history no retained restore
        // path can need. Records at or before the *previous* snapshot's
        // epoch are unreachable (restoring from this snapshot skips them;
        // falling back to the previous one starts after them), as are
        // snapshot files older than the previous one.
        let retain_after = self.last_snapshot_epoch.min(epoch);
        compact_wal(
            &self.wal,
            &self.dir.join(WAL_FILE),
            retain_after,
            self.config.durability != Durability::None,
        )
        .map_err(PersistError::Wal)?;
        prune_snapshots(&self.dir, retain_after);
        self.last_snapshot_epoch = epoch;
        Ok(compaction)
    }

    /// Installs a scripted [`FaultPlan`] into the session's I/O shim and
    /// solve path: append/sync faults are counted and fired by the
    /// write-ahead log (operation counters reset to 0 at installation),
    /// and the plan's `panic_epochs` arm the session's injected solve
    /// panics (exercised through
    /// [`ServiceSession::step_with_deadline`](netsched_service::ServiceSession::step_with_deadline)'s
    /// quarantine). Robustness-harness surface; installing
    /// [`FaultPlan::none`] disarms everything.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.session.inject_solve_panics(plan.panic_epochs.clone());
        install_faults(&self.wal, plan);
    }

    /// The operator-visible health of the write-ahead log: effective vs.
    /// configured durability, retry/sync-failure counters and every
    /// [`DegradeEvent`](crate::DegradeEvent) so far.
    pub fn health(&self) -> WalHealth {
        wal_health(&self.wal)
    }

    /// The wrapped session (the journal stays attached — stepping through
    /// [`session_mut`](DurableSession::session_mut) still journals, it
    /// just skips the epoch-cadence fsync and snapshot checks).
    pub fn session(&self) -> &ServiceSession {
        &self.session
    }

    /// Mutable access to the wrapped session.
    pub fn session_mut(&mut self) -> &mut ServiceSession {
        &mut self.session
    }

    /// Unwraps the session, detaching the journal.
    pub fn into_session(mut self) -> ServiceSession {
        self.session.detach_journal();
        self.session
    }

    /// The directory holding the log and snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The epoch of the most recently written snapshot.
    pub fn last_snapshot_epoch(&self) -> u64 {
        self.last_snapshot_epoch
    }

    /// The persistence configuration.
    pub fn config(&self) -> &PersistConfig {
        &self.config
    }
}

/// Deletes snapshot files with an epoch below `keep_from` (best-effort:
/// an undeletable file only delays its removal to the next cadence).
fn prune_snapshots(dir: &Path, keep_from: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(epoch) = name
            .to_str()
            .and_then(|n| n.strip_prefix(SNAPSHOT_PREFIX))
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if epoch < keep_from {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

impl std::fmt::Debug for DurableSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("dir", &self.dir)
            .field("epoch", &self.session.epoch())
            .field("last_snapshot_epoch", &self.last_snapshot_epoch)
            .field("config", &self.config)
            .finish()
    }
}
