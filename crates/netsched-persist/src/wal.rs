//! The write-ahead log file and its [`EpochJournal`] adapter.
//!
//! The log is an append-only concatenation of
//! [`framing`](netsched_workloads::framing) frames whose payloads are
//! rendered [`wal_record`] documents. One shared handle is held by both
//! the journal (attached to the session, appending on every accepted
//! batch) and the [`DurableSession`](crate::DurableSession) (fsyncing it
//! on the epoch cadence).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use netsched_service::{wal_record, DemandEvent, EpochJournal};
use netsched_workloads::framing::encode_frame;

/// The write-ahead log file name inside a durable session directory.
pub const WAL_FILE: &str = "wal.log";

/// The open log file, shared between the attached journal and the
/// durable session.
pub(crate) struct WalInner {
    file: File,
}

pub(crate) type WalHandle = Arc<Mutex<WalInner>>;

/// Opens (creating if absent) the directory's log file for appending.
pub(crate) fn open_wal(dir: &Path) -> Result<WalHandle, String> {
    let path = dir.join(WAL_FILE);
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    Ok(Arc::new(Mutex::new(WalInner { file })))
}

/// Appends one framed record, optionally forcing it to stable storage.
pub(crate) fn append_record(
    handle: &WalHandle,
    epoch: u64,
    batch: &[DemandEvent],
    sync: bool,
) -> Result<(), String> {
    let payload = wal_record(epoch, batch).render();
    let frame = encode_frame(payload.as_bytes());
    let mut inner = handle.lock().map_err(|_| "wal lock poisoned".to_string())?;
    inner
        .file
        .write_all(&frame)
        .map_err(|e| format!("appending to the write-ahead log: {e}"))?;
    if sync {
        inner
            .file
            .sync_data()
            .map_err(|e| format!("syncing the write-ahead log: {e}"))?;
    }
    Ok(())
}

/// Forces all appended records to stable storage.
pub(crate) fn sync_wal(handle: &WalHandle) -> Result<(), String> {
    let inner = handle.lock().map_err(|_| "wal lock poisoned".to_string())?;
    inner
        .file
        .sync_data()
        .map_err(|e| format!("syncing the write-ahead log: {e}"))
}

/// The [`EpochJournal`] implementation: appends one framed record per
/// accepted batch; in [`Durability::Batch`](crate::Durability::Batch)
/// mode the append fsyncs before returning, so the step cannot proceed
/// until the record is durable.
pub(crate) struct WalJournal {
    handle: WalHandle,
    sync_every_batch: bool,
}

impl WalJournal {
    pub(crate) fn new(handle: WalHandle, sync_every_batch: bool) -> Self {
        Self {
            handle,
            sync_every_batch,
        }
    }
}

impl EpochJournal for WalJournal {
    fn record(&mut self, epoch: u64, batch: &[DemandEvent]) -> Result<(), String> {
        append_record(&self.handle, epoch, batch, self.sync_every_batch)
    }
}
