//! The write-ahead log file and its [`EpochJournal`] adapter.
//!
//! The log is an append-only concatenation of
//! [`framing`](netsched_workloads::framing) frames whose payloads are
//! rendered [`wal_record`] documents. One shared handle is held by both
//! the journal (attached to the session, appending on every accepted
//! batch) and the [`DurableSession`](crate::DurableSession) (fsyncing it
//! on the epoch cadence).
//!
//! # Fault tolerance
//!
//! Every append and sync goes through a small shim that (a) consults an
//! optionally installed [`FaultPlan`] — the robustness harness's scripted
//! failures — and (b) retries transient failures with a short backoff.
//! A failed or torn append is **rolled back** (`set_len` to the
//! pre-append length) before the retry, so the log never accumulates
//! torn frames from the retry loop itself. Sync failures that survive
//! the retries do not fail the epoch: they *downgrade* the effective
//! [`Durability`](crate::Durability) one rung (`Batch → Epoch → None`)
//! and record the event in the operator-visible [`WalHealth`].

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use netsched_obs::{Counter, Histogram, ObsRegistry};
use netsched_service::{
    parse_wal_record, wal_record, wal_rollback_record, DemandEvent, EpochJournal,
};
use netsched_workloads::framing::{encode_frame, scan_frames, FRAME_HEADER_LEN};
use netsched_workloads::json::JsonValue;
use netsched_workloads::FaultPlan;

use crate::{DegradeEvent, Durability, WalHealth};

/// The write-ahead log file name inside a durable session directory.
pub const WAL_FILE: &str = "wal.log";

/// Failed appends are retried this many times (after the initial
/// attempt) before the epoch is failed.
const APPEND_RETRIES: u32 = 3;

/// Failed syncs are retried this many times (after the initial attempt)
/// before the effective durability degrades one rung.
const SYNC_RETRIES: u32 = 2;

/// Backoff before retry `attempt` (1-based): 100µs doubling per attempt.
fn backoff(attempt: u32) -> Duration {
    Duration::from_micros(100u64 << attempt.min(6))
}

/// How much a [`Durability`] promises — the degrade ladder only ever
/// moves *down* this order.
fn durability_rank(d: Durability) -> u8 {
    match d {
        Durability::None => 0,
        Durability::Epoch => 1,
        Durability::Batch => 2,
    }
}

/// The installed fault schedule plus its operation counters.
#[derive(Default)]
struct FaultState {
    plan: FaultPlan,
    append_ops: u64,
    sync_ops: u64,
}

/// Pre-resolved WAL metric handles (see the crate docs' catalogue). The
/// counters mirror the matching [`WalHealth`] fields — `wal.append_retries`
/// tracks `health.append_retries`, `wal.sync_failures` tracks
/// `health.sync_failures`, `wal.degrade_events` tracks
/// `health.degrade_events.len()` — so a metrics scrape and a health query
/// can be cross-checked against each other.
#[derive(Clone)]
pub(crate) struct WalObs {
    /// `wal.append_ns` — whole journal append (retries and any
    /// batch-durability fsync included).
    append_ns: Histogram,
    /// `wal.fsync_ns` — individual fsync attempts (batch and epoch cadence).
    fsync_ns: Histogram,
    /// `wal.append_retries` — mirrors [`WalHealth::append_retries`].
    append_retries: Counter,
    /// `wal.sync_failures` — mirrors [`WalHealth::sync_failures`].
    sync_failures: Counter,
    /// `wal.degrade_events` — mirrors `WalHealth::degrade_events.len()`.
    degrade_events: Counter,
}

impl WalObs {
    pub(crate) fn resolve(obs: &ObsRegistry) -> Self {
        Self {
            append_ns: obs.histogram("wal.append_ns"),
            fsync_ns: obs.histogram("wal.fsync_ns"),
            append_retries: obs.counter("wal.append_retries"),
            sync_failures: obs.counter("wal.sync_failures"),
            degrade_events: obs.counter("wal.degrade_events"),
        }
    }
}

/// The open log file, shared between the attached journal and the
/// durable session.
pub(crate) struct WalInner {
    file: File,
    faults: FaultState,
    health: WalHealth,
    /// Metric handles, installed by the durable session (None until then —
    /// the WAL stays usable without a registry).
    obs: Option<WalObs>,
}

pub(crate) type WalHandle = Arc<Mutex<WalInner>>;

impl WalInner {
    /// One physical append attempt, counted against the fault plan.
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        let op = self.faults.append_ops;
        self.faults.append_ops += 1;
        if self.faults.plan.fails_append(op) {
            return Err(io::Error::other("injected append failure"));
        }
        if self.faults.plan.tears_append(op) {
            let torn = frame.len() / 2;
            self.file.write_all(&frame[..torn])?;
            return Err(io::Error::other("injected torn append"));
        }
        self.file.write_all(frame)
    }

    /// One physical sync attempt, counted against the fault plan and
    /// timed into `wal.fsync_ns`.
    fn sync_once(&mut self) -> io::Result<()> {
        let op = self.faults.sync_ops;
        self.faults.sync_ops += 1;
        if self.faults.plan.fails_sync(op) {
            return Err(io::Error::other("injected fsync failure"));
        }
        let start = std::time::Instant::now();
        let outcome = self.file.sync_data();
        if let Some(obs) = &self.obs {
            obs.fsync_ns.record_duration(start.elapsed());
        }
        outcome
    }

    /// Downgrades the effective durability to `to` (no-op when already at
    /// or below it), recording the operator-visible event.
    fn degrade(&mut self, to: Durability, epoch: u64, cause: String) {
        let from = self.health.effective_durability;
        if durability_rank(from) <= durability_rank(to) {
            return;
        }
        self.health.degrade_events.push(DegradeEvent {
            epoch,
            from,
            to,
            cause,
        });
        self.health.effective_durability = to;
        if let Some(obs) = &self.obs {
            obs.degrade_events.inc();
        }
    }
}

/// Opens (creating if absent) the directory's log file for appending,
/// with the health state initialized to the configured durability.
pub(crate) fn open_wal(dir: &Path, configured: Durability) -> Result<WalHandle, String> {
    let path = dir.join(WAL_FILE);
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    Ok(Arc::new(Mutex::new(WalInner {
        file,
        faults: FaultState::default(),
        health: WalHealth::new(configured),
        obs: None,
    })))
}

/// Resolves the WAL metric handles from `obs` and installs them into the
/// handle; the durable session calls this with its session's registry so
/// WAL and epoch metrics land in one report.
pub(crate) fn install_obs(handle: &WalHandle, obs: &ObsRegistry) {
    if let Ok(mut inner) = handle.lock() {
        inner.obs = Some(WalObs::resolve(obs));
    }
}

/// Installs a fault schedule into the log shim, resetting the operation
/// counters (so a plan's indices count from the installation point).
pub(crate) fn install_faults(handle: &WalHandle, plan: FaultPlan) {
    if let Ok(mut inner) = handle.lock() {
        inner.faults = FaultState {
            plan,
            append_ops: 0,
            sync_ops: 0,
        };
    }
}

/// A clone of the operator-visible health state.
pub(crate) fn wal_health(handle: &WalHandle) -> WalHealth {
    handle
        .lock()
        .map(|inner| inner.health.clone())
        .unwrap_or_else(|_| WalHealth::new(Durability::None))
}

/// Appends one framed record for the batch advancing the session to
/// `epoch`. Failed or torn writes roll the file back to its pre-append
/// length and retry with backoff; only a write that keeps failing after
/// [`APPEND_RETRIES`] retries fails the append (and thereby the step,
/// with the session untouched — the write-ahead contract). When the
/// effective durability is [`Durability::Batch`] the record is fsynced
/// before returning; a sync that keeps failing **degrades** the handle
/// to [`Durability::Epoch`] instead of failing the append (the record is
/// in the log, just not yet forced to stable storage).
pub(crate) fn append_record(
    handle: &WalHandle,
    epoch: u64,
    batch: &[DemandEvent],
) -> Result<(), String> {
    append_payload(handle, epoch, wal_record(epoch, batch))
}

/// Appends one rollback tombstone for `epoch` (the journaled batch was
/// quarantined and must not replay). Same retry/fsync policy as a batch
/// record.
pub(crate) fn append_rollback(handle: &WalHandle, epoch: u64) -> Result<(), String> {
    append_payload(handle, epoch, wal_rollback_record(epoch))
}

fn append_payload(handle: &WalHandle, epoch: u64, payload: JsonValue) -> Result<(), String> {
    let append_start = std::time::Instant::now();
    let payload = payload.render();
    let frame = encode_frame(payload.as_bytes());
    let mut inner = handle.lock().map_err(|_| "wal lock poisoned".to_string())?;
    let slow = inner.faults.plan.slow_append_micros;
    if slow > 0 {
        std::thread::sleep(Duration::from_micros(slow));
    }
    let mut attempt: u32 = 0;
    loop {
        let start = inner
            .file
            .metadata()
            .map_err(|e| format!("inspecting the write-ahead log: {e}"))?
            .len();
        match inner.write_frame(&frame) {
            Ok(()) => break,
            Err(e) => {
                // Roll back any torn prefix so the retry (and the
                // recovery scanner) see a clean frame boundary.
                let _ = inner.file.set_len(start);
                attempt += 1;
                inner.health.append_retries += 1;
                if let Some(obs) = &inner.obs {
                    obs.append_retries.inc();
                }
                if attempt > APPEND_RETRIES {
                    return Err(format!(
                        "appending to the write-ahead log (after {attempt} attempts): {e}"
                    ));
                }
                std::thread::sleep(backoff(attempt));
            }
        }
    }
    if inner.health.effective_durability == Durability::Batch {
        let mut attempt: u32 = 0;
        loop {
            match inner.sync_once() {
                Ok(()) => break,
                Err(e) => {
                    attempt += 1;
                    inner.health.sync_failures += 1;
                    if let Some(obs) = &inner.obs {
                        obs.sync_failures.inc();
                    }
                    if attempt > SYNC_RETRIES {
                        inner.degrade(
                            Durability::Epoch,
                            epoch,
                            format!("batch-append fsync failed after {attempt} attempts: {e}"),
                        );
                        break;
                    }
                    std::thread::sleep(backoff(attempt));
                }
            }
        }
    }
    if let Some(obs) = &inner.obs {
        obs.append_ns.record_duration(append_start.elapsed());
    }
    Ok(())
}

/// Forces all appended records to stable storage (the epoch-cadence
/// sync). A no-op once the handle has degraded to [`Durability::None`];
/// a sync that keeps failing after the retries performs that degrade
/// (`Epoch → None`) and returns `Ok` — the serving path stays up, the
/// downgrade is reported through [`WalHealth`].
pub(crate) fn sync_wal(handle: &WalHandle, epoch: u64) -> Result<(), String> {
    let mut inner = handle.lock().map_err(|_| "wal lock poisoned".to_string())?;
    if inner.health.effective_durability == Durability::None {
        return Ok(());
    }
    let mut attempt: u32 = 0;
    loop {
        match inner.sync_once() {
            Ok(()) => return Ok(()),
            Err(e) => {
                attempt += 1;
                inner.health.sync_failures += 1;
                if let Some(obs) = &inner.obs {
                    obs.sync_failures.inc();
                }
                if attempt > SYNC_RETRIES {
                    inner.degrade(
                        Durability::None,
                        epoch,
                        format!("epoch fsync failed after {attempt} attempts: {e}"),
                    );
                    return Ok(());
                }
                std::thread::sleep(backoff(attempt));
            }
        }
    }
}

/// The [`EpochJournal`] implementation: appends one framed record per
/// accepted batch. Whether the append fsyncs before returning is decided
/// by the handle's **effective** durability (configured
/// [`Durability::Batch`] until a degrade event lowers it), so the
/// write-ahead guarantee holds exactly while the health state claims it
/// does.
pub(crate) struct WalJournal {
    handle: WalHandle,
}

impl WalJournal {
    pub(crate) fn new(handle: WalHandle) -> Self {
        Self { handle }
    }
}

impl EpochJournal for WalJournal {
    fn record(&mut self, epoch: u64, batch: &[DemandEvent]) -> Result<(), String> {
        append_record(&self.handle, epoch, batch)
    }

    fn record_rollback(&mut self, epoch: u64) -> Result<(), String> {
        append_rollback(&self.handle, epoch)
    }
}

/// Drops the log's prefix of records at or before `retain_after`
/// (records the retained snapshots no longer need), rewriting the file in
/// place under the handle's lock. Because record epochs are
/// non-decreasing, the retained records are a contiguous suffix: the cut
/// lands at the first record with epoch past `retain_after` — or,
/// conservatively, at the first frame that does not decode (everything
/// from there on is kept verbatim for recovery to adjudicate). Returns
/// the bytes dropped.
///
/// The rewrite is `set_len(0)` + one write of the retained suffix, so a
/// crash inside it can lose the retained records — which the snapshot
/// that triggered the compaction already covers; only the
/// fall-back-one-snapshot restore path narrows during that window.
pub(crate) fn compact_wal(
    handle: &WalHandle,
    path: &Path,
    retain_after: u64,
    durable: bool,
) -> Result<u64, String> {
    let mut inner = handle.lock().map_err(|_| "wal lock poisoned".to_string())?;
    let bytes =
        std::fs::read(path).map_err(|e| format!("reading {} to compact: {e}", path.display()))?;
    let scan = scan_frames(&bytes);
    let mut cut = 0usize;
    for frame in &scan.frames {
        let epoch = std::str::from_utf8(frame)
            .map_err(|e| e.to_string())
            .and_then(JsonValue::parse)
            .and_then(|doc| parse_wal_record(&doc))
            .map(|record| record.epoch());
        match epoch {
            Ok(epoch) if epoch <= retain_after => cut += FRAME_HEADER_LEN + frame.len(),
            _ => break,
        }
    }
    if cut == 0 {
        return Ok(0);
    }
    let retained = &bytes[cut..];
    inner
        .file
        .set_len(0)
        .map_err(|e| format!("truncating {} to compact: {e}", path.display()))?;
    inner
        .file
        .write_all(retained)
        .map_err(|e| format!("rewriting {} after compaction: {e}", path.display()))?;
    if durable {
        inner
            .file
            .sync_data()
            .map_err(|e| format!("syncing the compacted {}: {e}", path.display()))?;
    }
    Ok(cut as u64)
}
