//! Durable serving tier for `netsched-service`: a **write-ahead event
//! log** plus **periodic snapshots**, with restore defined as *latest
//! valid snapshot + log replay* through the session's normal
//! [`step`](netsched_service::ServiceSession::step) path.
//!
//! # The recovery contract
//!
//! A [`DurableSession`] wraps a
//! [`ServiceSession`](netsched_service::ServiceSession) and owns a
//! directory:
//!
//! * `wal.log` — an append-only concatenation of framed, CRC-checksummed
//!   records ([`netsched_workloads::framing`]), one per accepted epoch
//!   batch. The record is appended through the session's
//!   [`EpochJournal`](netsched_service::EpochJournal) hook **before** the
//!   epoch executes (write-ahead: a journal failure aborts the step with
//!   the session unchanged).
//! * `snapshot-<epoch>.json` — versioned full-state snapshots
//!   ([`ServiceSession::snapshot`](netsched_service::ServiceSession::snapshot)),
//!   written atomically (temp file + rename) on a configurable epoch
//!   cadence; [`compact`](netsched_service::ServiceSession::compact) runs
//!   first, so stale split cores and oversized warm replay stacks never
//!   reach disk.
//!
//! [`restore`] loads the newest snapshot that parses and validates
//! (corrupt ones are skipped, counted in
//! [`RestoreReport::dropped_snapshots`]), scans the log to its longest
//! valid frame prefix (truncated tails, flipped checksum bytes and
//! zero-length files all degrade to a shorter prefix, never a panic) and
//! replays the records past the snapshot's epoch through the normal
//! `step` path. Because replay *is* the serving path, the recovered
//! session inherits the session's own equivalence contract: **Cold**
//! restores are byte-identical to the uninterrupted run, **Warm**
//! restores are certificate-equivalent (the root
//! `tests/durability_recovery.rs` suite pins both, at several thread
//! counts).
//!
//! Quarantined batches never resurrect on replay: the journal records a
//! batch *before* its solve, so a solve that panicked leaves a dead
//! record in the log — the quarantine appends a **rollback tombstone**
//! after restoring the session, and replay cancels the dead record
//! against it. Should the tombstone append itself fail, the next
//! accepted batch re-uses the dead record's epoch and replay lets the
//! **last record of a duplicated epoch supersede** the earlier ones;
//! either way the cancelled records are counted in
//! [`RestoreReport::rolled_back_records`]. [`DurableSession::recover`]
//! additionally truncates the log at the first record that could *not*
//! replay (corrupt frame, undecodable payload or epoch discontinuity),
//! so records acknowledged after a recovery are never stranded behind a
//! dead suffix.
//!
//! On-disk history stays bounded: each successful cadence snapshot drops
//! log records at or before the *previous* snapshot's epoch and deletes
//! snapshot files older than the previous one (see
//! [`DurableSession::snapshot_now`]), keeping roughly two cadences of
//! replayable history — enough for a restore to fall back one snapshot
//! when the newest is corrupt.
//!
//! # Choosing a [`Durability`]
//!
//! | mode | fsync | loses on power cut |
//! |---|---|---|
//! | [`Durability::None`] | never | everything since the OS last flushed |
//! | [`Durability::Epoch`] | once per successful epoch | at most the in-flight epoch |
//! | [`Durability::Batch`] | inside the journal append, before the epoch executes | nothing acknowledged |
//!
//! `Batch` is the classic write-ahead guarantee (the record is on disk
//! before any state mutates); `Epoch` is the usual serving trade-off
//! (group commit at epoch granularity); `None` is for tests and bulk
//! loads. The `durability` bench records the append-throughput cost of
//! each mode.
//!
//! # Graceful degradation: the durability ladder
//!
//! The configured [`Durability`] is a *promise*, and the tier treats a
//! disk that stops honoring it as an operational event, not a crash.
//! Every log append and fsync runs through a retrying shim (short
//! exponential backoff; failed or torn appends are rolled back to the
//! pre-append length before the retry). When an **fsync keeps failing**
//! after the retries, the session **downgrades its effective durability
//! one rung and keeps serving**:
//!
//! ```text
//! Batch ──fsync fails──▶ Epoch ──fsync fails──▶ None
//! ```
//!
//! * `Batch → Epoch`: the record is in the log but could not be forced
//!   to stable storage inside the append; subsequent appends stop
//!   syncing and the epoch-cadence sync takes over.
//! * `Epoch → None`: the epoch-cadence sync itself keeps failing; the
//!   log degrades to page-cache-only durability.
//!
//! Appends that keep failing outright (not just their fsync) still fail
//! the step — the write-ahead contract never silently drops a record.
//! Every downgrade is **operator-visible**: [`DurableSession::health`]
//! reports the effective vs. configured durability, retry and
//! sync-failure counters and the full list of [`DegradeEvent`]s (epoch +
//! cause). Fault campaigns are scripted with
//! [`FaultPlan`](netsched_workloads::FaultPlan) via
//! [`DurableSession::inject_faults`]; the root `tests/fault_injection.rs`
//! suite pins the ladder end to end.
//!
//! # Observability
//!
//! The WAL records into the wrapped session's
//! [`ObsRegistry`](netsched_obs::ObsRegistry), so one snapshot covers
//! epochs and durability alike: `wal.append_ns` / `wal.fsync_ns` latency
//! histograms plus counters that mirror [`WalHealth`] field-for-field —
//! `wal.append_retries` ↔ [`WalHealth::append_retries`],
//! `wal.sync_failures` ↔ [`WalHealth::sync_failures`],
//! `wal.degrade_events` ↔ `WalHealth::degrade_events.len()`. Recovery
//! records its phase timings (`restore.snapshot_load_ns`,
//! `restore.scan_ns`, `restore.replay_ns`) into the recovered session's
//! registry. [`DurableSession::set_metrics_dump_every`] writes periodic
//! [`MetricsReport`](netsched_obs::MetricsReport) JSONs under
//! `<dir>/metrics/`, and
//! [`DurableSession::step_with_deadline`] persists a quarantined batch's
//! forensics bundle (batch + panic payload + metrics) under
//! `<dir>/quarantine/epoch-<N>/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod durable;
mod restore;
mod wal;

use std::path::PathBuf;

pub use durable::{snapshot_path, DurableSession, SNAPSHOT_PREFIX};
pub use restore::{restore, RecoveredSession, RestoreReport};
pub use wal::WAL_FILE;

/// When the write-ahead log is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never fsync: appends reach the OS page cache only. Fastest; a
    /// crash of the *process* loses nothing (the kernel still holds the
    /// writes), a power cut loses whatever the OS had not flushed.
    None,
    /// One fsync per successful epoch, after the step completes. A power
    /// cut loses at most the epoch that was in flight.
    #[default]
    Epoch,
    /// Fsync inside every journal append, **before** the epoch executes —
    /// the classic write-ahead guarantee: no acknowledged batch can be
    /// lost, at one `fdatasync` of latency per batch.
    Batch,
}

/// Configuration of a [`DurableSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// The fsync policy of the write-ahead log (snapshots are synced
    /// whenever this is not [`Durability::None`]).
    pub durability: Durability,
    /// Write a snapshot every this many epochs (`0` disables automatic
    /// snapshots; [`DurableSession::snapshot_now`] is always available).
    /// The cadence trades write amplification against recovery time: the
    /// log suffix a restore must replay is at most this many records.
    pub snapshot_every: u64,
}

impl Default for PersistConfig {
    fn default() -> Self {
        Self {
            durability: Durability::Epoch,
            snapshot_every: 64,
        }
    }
}

/// An error of the durable tier's own I/O paths (session creation,
/// crash recovery, snapshot writes). Wraps the underlying [`io::Error`]
/// together with the operation and the file it targeted, so a failed
/// recovery names the exact path that broke instead of a bare OS string.
///
/// [`io::Error`]: std::io::Error
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io {
        /// What the tier was doing (e.g. `"creating"`, `"truncating the
        /// corrupt suffix of"`).
        op: &'static str,
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The write-ahead log shim failed (an append that kept failing
    /// after its retries, or a poisoned lock).
    Wal(String),
    /// Restoring from snapshots plus log replay failed.
    Restore(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            PersistError::Wal(why) => write!(f, "write-ahead log: {why}"),
            PersistError::Restore(why) => write!(f, "restore failed: {why}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One rung-down move of the durability ladder, kept in [`WalHealth`]
/// for the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeEvent {
    /// The epoch whose persistence triggered the downgrade.
    pub epoch: u64,
    /// The effective durability before the event.
    pub from: Durability,
    /// The effective durability after the event.
    pub to: Durability,
    /// Why (the exhausted retry's final error).
    pub cause: String,
}

/// Operator-visible health of the write-ahead log: what durability the
/// session is *actually* delivering, and how it got there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalHealth {
    /// The durability the session was configured with.
    pub configured_durability: Durability,
    /// The durability currently in effect — equal to the configured one
    /// until fsync failures force a downgrade (`Batch → Epoch → None`).
    pub effective_durability: Durability,
    /// Total append attempts that failed and were retried (or gave up).
    pub append_retries: u64,
    /// Total fsync attempts that failed.
    pub sync_failures: u64,
    /// Every downgrade, oldest first.
    pub degrade_events: Vec<DegradeEvent>,
}

impl WalHealth {
    pub(crate) fn new(configured: Durability) -> Self {
        Self {
            configured_durability: configured,
            effective_durability: configured,
            append_retries: 0,
            sync_failures: 0,
            degrade_events: Vec::new(),
        }
    }

    /// `true` when the session is delivering less durability than it was
    /// configured for.
    pub fn degraded(&self) -> bool {
        self.effective_durability != self.configured_durability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_core::AlgorithmConfig;
    use netsched_graph::{LineProblem, NetworkId};
    use netsched_service::{DemandEvent, DemandRequest, ServiceSession};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "netsched-persist-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn line_problem() -> LineProblem {
        let mut p = LineProblem::new(24, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for (release, len, profit) in [(0u32, 4u32, 3.0), (2, 5, 2.0), (8, 3, 4.0)] {
            p.add_demand(release, release + len + 2, len, profit, 1.0, acc.clone())
                .unwrap();
        }
        p
    }

    fn arrival(start: u32) -> DemandEvent {
        DemandEvent::Arrive(DemandRequest::Line {
            release: start,
            deadline: start + 6,
            processing: 3,
            profit: 2.5,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })
    }

    #[test]
    fn kill_and_recover_resumes_the_exact_state() {
        let dir = temp_dir();
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&problem, config),
            PersistConfig {
                durability: Durability::Batch,
                snapshot_every: 0,
            },
        )
        .unwrap();
        for start in [1u32, 5, 9, 13] {
            durable.step(&[arrival(start)]).unwrap();
        }
        let profit = durable.session().profit();
        let epoch = durable.session().epoch();
        let schedule = durable.session().schedule();
        drop(durable); // the crash

        let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.replayed_epochs, 4);
        assert_eq!(report.dropped_records, 0);
        assert_eq!(report.dropped_snapshots, 0);
        assert_eq!(report.final_epoch, epoch);
        assert_eq!(recovered.session().epoch(), epoch);
        assert_eq!(recovered.session().profit(), profit);
        assert_eq!(recovered.session().schedule(), schedule);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_short_circuits_replay() {
        let dir = temp_dir();
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&problem, config),
            PersistConfig {
                durability: Durability::None,
                snapshot_every: 2,
            },
        )
        .unwrap();
        for start in [1u32, 4, 7, 10, 13] {
            durable.step(&[arrival(start)]).unwrap();
        }
        assert_eq!(durable.last_snapshot_epoch(), 4);
        let profit = durable.session().profit();
        drop(durable);

        let recovered = restore(&dir).unwrap();
        // The epoch-4 snapshot covers records 1..=4; only epoch 5 replays.
        // Records 1 and 2 were compacted away when the epoch-4 snapshot
        // landed (they are at or before the previous snapshot's epoch),
        // so just 3 and 4 remain to skip.
        assert_eq!(recovered.report.snapshot_epoch, 4);
        assert_eq!(recovered.report.replayed_epochs, 1);
        assert_eq!(recovered.report.skipped_records, 2);
        assert_eq!(recovered.report.final_epoch, 5);
        assert_eq!(recovered.session.profit(), profit);
        // The same snapshot pruned the files its predecessor made
        // redundant: only the epoch-2 and epoch-4 snapshots remain.
        assert!(!snapshot_path(&dir, 0).exists());
        assert!(snapshot_path(&dir, 2).exists());
        assert!(snapshot_path(&dir, 4).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_an_older_one() {
        let dir = temp_dir();
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&problem, config),
            PersistConfig {
                durability: Durability::None,
                snapshot_every: 2,
            },
        )
        .unwrap();
        for start in [1u32, 4, 7, 10, 13] {
            durable.step(&[arrival(start)]).unwrap();
        }
        let profit = durable.session().profit();
        drop(durable);
        std::fs::write(snapshot_path(&dir, 4), b"{ not json").unwrap();

        let recovered = restore(&dir).unwrap();
        assert_eq!(recovered.report.dropped_snapshots, 1);
        assert_eq!(recovered.report.snapshot_epoch, 2);
        assert_eq!(recovered.report.replayed_epochs, 3);
        assert_eq!(recovered.report.final_epoch, 5);
        assert_eq!(recovered.session.profit(), profit);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
