//! Durable serving tier for `netsched-service`: a **write-ahead event
//! log** plus **periodic snapshots**, with restore defined as *latest
//! valid snapshot + log replay* through the session's normal
//! [`step`](netsched_service::ServiceSession::step) path.
//!
//! # The recovery contract
//!
//! A [`DurableSession`] wraps a
//! [`ServiceSession`](netsched_service::ServiceSession) and owns a
//! directory:
//!
//! * `wal.log` — an append-only concatenation of framed, CRC-checksummed
//!   records ([`netsched_workloads::framing`]), one per accepted epoch
//!   batch. The record is appended through the session's
//!   [`EpochJournal`](netsched_service::EpochJournal) hook **before** the
//!   epoch executes (write-ahead: a journal failure aborts the step with
//!   the session unchanged).
//! * `snapshot-<epoch>.json` — versioned full-state snapshots
//!   ([`ServiceSession::snapshot`](netsched_service::ServiceSession::snapshot)),
//!   written atomically (temp file + rename) on a configurable epoch
//!   cadence; [`compact`](netsched_service::ServiceSession::compact) runs
//!   first, so stale split cores and oversized warm replay stacks never
//!   reach disk.
//!
//! [`restore`] loads the newest snapshot that parses and validates
//! (corrupt ones are skipped, counted in
//! [`RestoreReport::dropped_snapshots`]), scans the log to its longest
//! valid frame prefix (truncated tails, flipped checksum bytes and
//! zero-length files all degrade to a shorter prefix, never a panic) and
//! replays the records past the snapshot's epoch through the normal
//! `step` path. Because replay *is* the serving path, the recovered
//! session inherits the session's own equivalence contract: **Cold**
//! restores are byte-identical to the uninterrupted run, **Warm**
//! restores are certificate-equivalent (the root
//! `tests/durability_recovery.rs` suite pins both, at several thread
//! counts).
//!
//! # Choosing a [`Durability`]
//!
//! | mode | fsync | loses on power cut |
//! |---|---|---|
//! | [`Durability::None`] | never | everything since the OS last flushed |
//! | [`Durability::Epoch`] | once per successful epoch | at most the in-flight epoch |
//! | [`Durability::Batch`] | inside the journal append, before the epoch executes | nothing acknowledged |
//!
//! `Batch` is the classic write-ahead guarantee (the record is on disk
//! before any state mutates); `Epoch` is the usual serving trade-off
//! (group commit at epoch granularity); `None` is for tests and bulk
//! loads. The `durability` bench records the append-throughput cost of
//! each mode.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod durable;
mod restore;
mod wal;

pub use durable::{snapshot_path, DurableSession, SNAPSHOT_PREFIX};
pub use restore::{restore, RecoveredSession, RestoreReport};
pub use wal::WAL_FILE;

/// When the write-ahead log is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never fsync: appends reach the OS page cache only. Fastest; a
    /// crash of the *process* loses nothing (the kernel still holds the
    /// writes), a power cut loses whatever the OS had not flushed.
    None,
    /// One fsync per successful epoch, after the step completes. A power
    /// cut loses at most the epoch that was in flight.
    #[default]
    Epoch,
    /// Fsync inside every journal append, **before** the epoch executes —
    /// the classic write-ahead guarantee: no acknowledged batch can be
    /// lost, at one `fdatasync` of latency per batch.
    Batch,
}

/// Configuration of a [`DurableSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// The fsync policy of the write-ahead log (snapshots are synced
    /// whenever this is not [`Durability::None`]).
    pub durability: Durability,
    /// Write a snapshot every this many epochs (`0` disables automatic
    /// snapshots; [`DurableSession::snapshot_now`] is always available).
    /// The cadence trades write amplification against recovery time: the
    /// log suffix a restore must replay is at most this many records.
    pub snapshot_every: u64,
}

impl Default for PersistConfig {
    fn default() -> Self {
        Self {
            durability: Durability::Epoch,
            snapshot_every: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_core::AlgorithmConfig;
    use netsched_graph::{LineProblem, NetworkId};
    use netsched_service::{DemandEvent, DemandRequest, ServiceSession};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "netsched-persist-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn line_problem() -> LineProblem {
        let mut p = LineProblem::new(24, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for (release, len, profit) in [(0u32, 4u32, 3.0), (2, 5, 2.0), (8, 3, 4.0)] {
            p.add_demand(release, release + len + 2, len, profit, 1.0, acc.clone())
                .unwrap();
        }
        p
    }

    fn arrival(start: u32) -> DemandEvent {
        DemandEvent::Arrive(DemandRequest::Line {
            release: start,
            deadline: start + 6,
            processing: 3,
            profit: 2.5,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })
    }

    #[test]
    fn kill_and_recover_resumes_the_exact_state() {
        let dir = temp_dir();
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&problem, config),
            PersistConfig {
                durability: Durability::Batch,
                snapshot_every: 0,
            },
        )
        .unwrap();
        for start in [1u32, 5, 9, 13] {
            durable.step(&[arrival(start)]).unwrap();
        }
        let profit = durable.session().profit();
        let epoch = durable.session().epoch();
        let schedule = durable.session().schedule();
        drop(durable); // the crash

        let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.replayed_epochs, 4);
        assert_eq!(report.dropped_records, 0);
        assert_eq!(report.dropped_snapshots, 0);
        assert_eq!(report.final_epoch, epoch);
        assert_eq!(recovered.session().epoch(), epoch);
        assert_eq!(recovered.session().profit(), profit);
        assert_eq!(recovered.session().schedule(), schedule);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_short_circuits_replay() {
        let dir = temp_dir();
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&problem, config),
            PersistConfig {
                durability: Durability::None,
                snapshot_every: 2,
            },
        )
        .unwrap();
        for start in [1u32, 4, 7, 10, 13] {
            durable.step(&[arrival(start)]).unwrap();
        }
        assert_eq!(durable.last_snapshot_epoch(), 4);
        let profit = durable.session().profit();
        drop(durable);

        let recovered = restore(&dir).unwrap();
        // The epoch-4 snapshot covers records 1..=4; only epoch 5 replays.
        assert_eq!(recovered.report.snapshot_epoch, 4);
        assert_eq!(recovered.report.replayed_epochs, 1);
        assert_eq!(recovered.report.skipped_records, 4);
        assert_eq!(recovered.report.final_epoch, 5);
        assert_eq!(recovered.session.profit(), profit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_an_older_one() {
        let dir = temp_dir();
        let problem = line_problem();
        let config = AlgorithmConfig::deterministic(0.1);
        let mut durable = DurableSession::create(
            &dir,
            ServiceSession::for_line(&problem, config),
            PersistConfig {
                durability: Durability::None,
                snapshot_every: 2,
            },
        )
        .unwrap();
        for start in [1u32, 4, 7, 10, 13] {
            durable.step(&[arrival(start)]).unwrap();
        }
        let profit = durable.session().profit();
        drop(durable);
        std::fs::write(snapshot_path(&dir, 4), b"{ not json").unwrap();

        let recovered = restore(&dir).unwrap();
        assert_eq!(recovered.report.dropped_snapshots, 1);
        assert_eq!(recovered.report.snapshot_epoch, 2);
        assert_eq!(recovered.report.replayed_epochs, 3);
        assert_eq!(recovered.report.final_epoch, 5);
        assert_eq!(recovered.session.profit(), profit);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
