//! Baselines and reference solvers for `netsched`.
//!
//! * [`panconesi_sozio`] — a reconstruction of the Panconesi–Sozio
//!   distributed line-network algorithm [15, 16], the prior state of the art
//!   the paper improves by a factor of 5 (its first phase stops at slackness
//!   `λ = 1/(5 + ε)` instead of `1 − ε`).
//! * [`greedy`] — centralized greedy heuristics (profit, density, shortest
//!   first) used as sanity baselines.
//! * [`exact`] — branch-and-bound exact optimum for small instances.
//! * [`interval_dp`] — exact weighted-interval-scheduling DP for the
//!   single-resource, fixed-interval, unit-height special case.
//! * [`upper_bound`] — cheap combinatorial optimum upper bounds, combined
//!   with the dual certificates produced by the algorithms.
//! * [`solvers`] — every baseline behind the unified
//!   [`netsched_core::Solver`] trait, with a [`registry`] the `netsched`
//!   facade chains after the paper algorithms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exact;
pub mod greedy;
pub mod interval_dp;
pub mod panconesi_sozio;
pub mod solvers;
pub mod upper_bound;

pub use exact::{branch_and_bound, exact_optimum, ExactResult};
pub use greedy::{best_greedy, greedy_schedule, GreedyOrder};
pub use interval_dp::weighted_interval_optimum;
pub use panconesi_sozio::{run_ps_style, solve_ps_line_narrow, solve_ps_line_unit};
pub use solvers::{
    registry, ExactSolver, GreedySolver, IntervalDpSolver, PsLineNarrowSolver, PsLineUnitSolver,
};
pub use upper_bound::{best_upper_bound, edge_cut_bound, total_profit_bound};
