//! Exact optimum via branch-and-bound, for small instances.
//!
//! The throughput-maximization problem is NP-hard even for unit heights on
//! multiple tree networks, so an exact solver is only practical for small
//! universes; the experiment harness uses it to compute the true optimum on
//! small instances so that *empirical* approximation ratios can be reported
//! next to the paper's worst-case guarantees.

use netsched_graph::{DemandInstanceUniverse, InstanceId};

/// Result of the exact solver.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactResult {
    /// An optimal selection of demand instances.
    pub selected: Vec<InstanceId>,
    /// The optimal profit.
    pub profit: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
    /// `true` if the search completed; `false` if the node budget was
    /// exhausted (the result is then only a lower bound).
    pub complete: bool,
}

/// Computes the optimal profit by branch-and-bound over the demand
/// instances, with a node budget to keep worst cases in check.
///
/// Instances are ordered by decreasing profit; at each node the solver
/// branches on including/excluding the next instance and prunes with the
/// "remaining profit" bound (the sum of profits of not-yet-decided demands,
/// counted once per demand).
pub fn branch_and_bound(universe: &DemandInstanceUniverse, node_budget: u64) -> ExactResult {
    // Order instances by decreasing profit (then id) so good solutions are
    // found early.
    let mut order: Vec<InstanceId> = universe.instance_ids().collect();
    order.sort_by(|&a, &b| {
        universe
            .profit(b)
            .partial_cmp(&universe.profit(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // remaining_demand_profit[i] = sum over demands that still have an
    // undecided instance at position ≥ i of their profit (each demand
    // counted once) — an upper bound on what positions ≥ i can add.
    let n = order.len();
    let mut remaining = vec![0.0; n + 1];
    {
        let mut seen = vec![false; universe.num_demands()];
        for i in (0..n).rev() {
            let inst = universe.instance(order[i]);
            remaining[i] = remaining[i + 1];
            if !seen[inst.demand.index()] {
                seen[inst.demand.index()] = true;
                remaining[i] += inst.profit;
            }
        }
    }

    struct Search<'a> {
        universe: &'a DemandInstanceUniverse,
        order: &'a [InstanceId],
        remaining: &'a [f64],
        best: Vec<InstanceId>,
        best_profit: f64,
        nodes: u64,
        budget: u64,
        complete: bool,
    }

    impl Search<'_> {
        fn dfs(&mut self, pos: usize, current: &mut Vec<InstanceId>, profit: f64) {
            self.nodes += 1;
            if self.nodes > self.budget {
                self.complete = false;
                return;
            }
            if profit > self.best_profit {
                self.best_profit = profit;
                self.best = current.clone();
            }
            if pos >= self.order.len() {
                return;
            }
            // Prune: even taking everything still undecided cannot beat the
            // incumbent.
            if profit + self.remaining[pos] <= self.best_profit + 1e-12 {
                return;
            }
            let d = self.order[pos];
            // Branch 1: include (if feasible).
            if self.universe.can_add(current, d) {
                current.push(d);
                self.dfs(pos + 1, current, profit + self.universe.profit(d));
                current.pop();
            }
            // Branch 2: exclude.
            self.dfs(pos + 1, current, profit);
        }
    }

    let mut search = Search {
        universe,
        order: &order,
        remaining: &remaining,
        best: Vec::new(),
        best_profit: 0.0,
        nodes: 0,
        budget: node_budget,
        complete: true,
    };
    let mut current = Vec::new();
    search.dfs(0, &mut current, 0.0);

    let mut selected = search.best;
    selected.sort_unstable();
    ExactResult {
        profit: search.best_profit,
        selected,
        nodes: search.nodes,
        complete: search.complete,
    }
}

/// Convenience wrapper with a default node budget suitable for the small
/// instances used in experiments (up to a few dozen demand instances).
pub fn exact_optimum(universe: &DemandInstanceUniverse) -> ExactResult {
    branch_and_bound(universe, 20_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};
    use netsched_graph::{LineProblem, NetworkId, TreeProblem, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn figure1_optimum_is_two() {
        let u = figure1_line_problem().universe();
        let res = exact_optimum(&u);
        assert!(res.complete);
        assert!((res.profit - 2.0).abs() < 1e-9);
        assert!(u.is_feasible(&res.selected));
    }

    #[test]
    fn figure6_optimum_is_five() {
        // ⟨4,13⟩ (3.0) and ⟨2,3⟩ (2.0) are compatible; ⟨12,13⟩ conflicts
        // with ⟨4,13⟩.
        let u = figure6_problem().universe();
        let res = exact_optimum(&u);
        assert!(res.complete);
        assert!((res.profit - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_tree_optimum() {
        // Analysed in the core crate's tests: the optimum is 5.5
        // (demand 0 on tree 0 and demand 2 on tree 1).
        let u = two_tree_problem().universe();
        let res = exact_optimum(&u);
        assert!(res.complete);
        assert!((res.profit - 5.5).abs() < 1e-9);
    }

    #[test]
    fn exact_dominates_greedy_and_respects_dual_bound() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..3 {
            let n = 12;
            let mut p = TreeProblem::new(n);
            let mut nets = Vec::new();
            for _ in 0..2 {
                let edges = (1..n)
                    .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
                    .collect();
                nets.push(p.add_network(edges).unwrap());
            }
            for _ in 0..8 {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                while v == u {
                    v = rng.gen_range(0..n);
                }
                p.add_unit_demand(
                    VertexId::new(u),
                    VertexId::new(v),
                    rng.gen_range(1.0..10.0),
                    nets.clone(),
                )
                .unwrap();
            }
            let u = p.universe();
            let exact = exact_optimum(&u);
            assert!(exact.complete);
            let greedy = crate::greedy::best_greedy(&u);
            assert!(exact.profit + 1e-9 >= greedy.profit);
            // The distributed algorithm's dual certificate upper-bounds the
            // true optimum.
            let sol = netsched_core::solve_unit_tree(
                &p,
                &netsched_core::AlgorithmConfig::deterministic(0.1),
            );
            assert!(sol.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit);
            // And the exact optimum dominates the approximate solution.
            assert!(exact.profit + 1e-9 >= sol.profit);
            // Empirical ratio within the proven worst case.
            if sol.profit > 0.0 {
                assert!(exact.profit / sol.profit <= 7.0 / 0.9 + 1e-6);
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A dense instance with a tiny node budget cannot complete.
        let mut p = LineProblem::new(12, 1);
        let acc = vec![NetworkId::new(0)];
        for _ in 0..10 {
            p.add_demand(0, 11, 3, 1.0, 1.0, acc.clone()).unwrap();
        }
        let u = p.universe();
        let res = branch_and_bound(&u, 50);
        assert!(!res.complete);
        // Even an incomplete run returns a feasible selection.
        assert!(u.is_feasible(&res.selected));
    }

    #[test]
    fn arbitrary_heights_respected() {
        let u = figure1_line_problem().universe();
        let res = exact_optimum(&u);
        // The optimum keeps C plus one of A or B: profit 2.
        assert_eq!(res.selected.len(), 2);
    }
}
