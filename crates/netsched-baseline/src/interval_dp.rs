//! Exact weighted interval scheduling for the single-resource, unit-height,
//! fixed-interval special case.
//!
//! When there is a single line resource, every demand is a fixed interval
//! (no window slack) and all heights are 1, the problem degenerates to
//! classic weighted interval scheduling, solvable exactly in
//! `O(m log m)` by dynamic programming. The experiment harness uses this as
//! a scalable exact reference for the line-network experiments (Theorem 7.1)
//! — the branch-and-bound solver covers the general cases but only at small
//! sizes.

use netsched_graph::{DemandInstanceUniverse, InstanceId};

/// Returns the optimal profit and selection for a universe that consists of
/// fixed intervals on a single unit-capacity resource with unit heights;
/// returns `None` if the universe does not have that shape.
pub fn weighted_interval_optimum(
    universe: &DemandInstanceUniverse,
) -> Option<(f64, Vec<InstanceId>)> {
    if universe.num_networks() != 1 || !universe.is_unit_height() || !universe.is_uniform_capacity()
    {
        return None;
    }
    // Each demand must have exactly one instance (fixed interval, single
    // resource) and its path must be contiguous.
    let mut jobs: Vec<(u32, u32, f64, InstanceId)> = Vec::new(); // (start, end, profit, id)
    for a in 0..universe.num_demands() {
        let insts = universe.instances_of_demand(netsched_graph::DemandId::new(a));
        if insts.len() != 1 {
            return None;
        }
        let inst = universe.instance(insts[0]);
        // A line instance is exactly one contiguous interval run.
        let run = inst.path.as_single_run()?;
        jobs.push((run.start, run.end, inst.profit, inst.id));
    }

    // Sort by end slot; dp[i] = best profit using the first i jobs.
    jobs.sort_by_key(|&(s, e, _, _)| (e, s));
    let m = jobs.len();
    let mut dp = vec![0.0f64; m + 1];
    let mut take = vec![false; m];
    // prev[i] = number of jobs (in sorted order) ending strictly before
    // jobs[i] starts.
    let ends: Vec<u32> = jobs.iter().map(|&(_, e, _, _)| e).collect();
    for i in 0..m {
        let (s, _e, p, _) = jobs[i];
        // Find the last job whose end < s via binary search on `ends[..i]`.
        let prev = ends[..i].partition_point(|&e| e < s);
        let with = dp[prev] + p;
        let without = dp[i];
        if with > without {
            dp[i + 1] = with;
            take[i] = true;
        } else {
            dp[i + 1] = without;
        }
    }

    // Reconstruct.
    let mut selected = Vec::new();
    let mut i = m;
    while i > 0 {
        if take[i - 1] {
            let (s, _, _, id) = jobs[i - 1];
            selected.push(id);
            i = ends[..i - 1].partition_point(|&e| e < s);
        } else {
            i -= 1;
        }
    }
    selected.sort_unstable();
    debug_assert!(universe.is_feasible(&selected));
    Some((dp[m], selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_optimum;
    use netsched_graph::{LineProblem, NetworkId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fixed_interval_problem(seed: u64, n: u32, m: usize) -> LineProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = LineProblem::new(n as usize, 1);
        let acc = vec![NetworkId::new(0)];
        for _ in 0..m {
            let len = rng.gen_range(1..=(n / 3).max(1));
            let start = rng.gen_range(0..=(n - len));
            p.add_interval_demand(start, len, rng.gen_range(1.0..20.0), 1.0, acc.clone())
                .unwrap();
        }
        p
    }

    #[test]
    fn dp_matches_branch_and_bound() {
        for seed in 0..5u64 {
            let p = fixed_interval_problem(seed, 30, 12);
            let u = p.universe();
            let (dp_profit, dp_sel) = weighted_interval_optimum(&u).expect("valid shape");
            let bb = exact_optimum(&u);
            assert!(bb.complete);
            assert!(
                (dp_profit - bb.profit).abs() < 1e-9,
                "seed {seed}: DP {dp_profit} vs B&B {}",
                bb.profit
            );
            assert!(u.is_feasible(&dp_sel));
            assert!((u.total_profit(&dp_sel) - dp_profit).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_non_matching_shapes() {
        // Two resources → None.
        let mut p = LineProblem::new(10, 2);
        p.add_interval_demand(0, 2, 1.0, 1.0, vec![NetworkId::new(0), NetworkId::new(1)])
            .unwrap();
        assert!(weighted_interval_optimum(&p.universe()).is_none());
        // Windows with slack (several instances per demand) → None.
        let mut p = LineProblem::new(10, 1);
        p.add_demand(0, 8, 2, 1.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        assert!(weighted_interval_optimum(&p.universe()).is_none());
        // Non-unit heights → None.
        let mut p = LineProblem::new(10, 1);
        p.add_interval_demand(0, 2, 1.0, 0.5, vec![NetworkId::new(0)])
            .unwrap();
        assert!(weighted_interval_optimum(&p.universe()).is_none());
    }

    #[test]
    fn simple_chain_of_disjoint_jobs_takes_all() {
        let mut p = LineProblem::new(12, 1);
        let acc = vec![NetworkId::new(0)];
        for i in 0..4 {
            p.add_interval_demand(3 * i, 3, 1.0, 1.0, acc.clone())
                .unwrap();
        }
        let u = p.universe();
        let (profit, sel) = weighted_interval_optimum(&u).unwrap();
        assert!((profit - 4.0).abs() < 1e-9);
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn nested_jobs_pick_the_heavier() {
        let mut p = LineProblem::new(10, 1);
        let acc = vec![NetworkId::new(0)];
        p.add_interval_demand(0, 10, 5.0, 1.0, acc.clone()).unwrap();
        p.add_interval_demand(0, 3, 2.0, 1.0, acc.clone()).unwrap();
        p.add_interval_demand(5, 3, 2.0, 1.0, acc).unwrap();
        let u = p.universe();
        let (profit, _) = weighted_interval_optimum(&u).unwrap();
        assert!((profit - 5.0).abs() < 1e-9, "the long heavy job wins");
    }
}
