//! The baselines behind the unified [`Solver`] trait.
//!
//! Every reference algorithm of this crate — the greedy heuristics, the
//! branch-and-bound exact solver, the weighted-interval DP and the
//! Panconesi–Sozio reconstruction — registers here as a
//! [`netsched_core::Solver`], so the `netsched` facade can run them through
//! the same cached [`Scheduler`](netsched_core::Scheduler) session and
//! [`portfolio`](netsched_core::Scheduler::portfolio) as the paper's
//! algorithms.

use crate::exact::branch_and_bound;
use crate::greedy::{greedy_schedule, GreedyOrder};
use crate::interval_dp::weighted_interval_optimum;
use crate::panconesi_sozio::run_ps_style;
use crate::upper_bound::total_profit_bound;
use netsched_core::{Problem, ProblemKind, RaiseRule, Solution, SolveContext, Solver};

/// The centralized greedy heuristic in a fixed order (no worst-case
/// guarantee; used as a sanity baseline and differential-testing oracle).
#[derive(Debug, Clone, Copy)]
pub struct GreedySolver {
    order: GreedyOrder,
}

impl GreedySolver {
    /// Greedy by the given order.
    pub fn new(order: GreedyOrder) -> Self {
        Self { order }
    }
}

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        match self.order {
            GreedyOrder::Profit => "greedy-profit",
            GreedyOrder::ProfitPerLength => "greedy-density",
            GreedyOrder::ShortestFirst => "greedy-shortest",
        }
    }

    fn guarantee(&self, _eps: f64) -> Option<f64> {
        None
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        greedy_schedule(ctx.universe(), self.order)
    }
}

/// Branch-and-bound exact optimum under a node budget. When the search
/// completes the dual slot of the diagnostics carries the optimum itself
/// (certified ratio 1); when the budget is exhausted the solution is only a
/// lower bound and the certificate falls back to the combinatorial
/// total-profit bound — hence no unconditional `guarantee` is claimed.
#[derive(Debug, Clone, Copy)]
pub struct ExactSolver {
    node_budget: u64,
}

impl ExactSolver {
    /// Exact solver with an explicit branch-and-bound node budget.
    pub fn with_budget(node_budget: u64) -> Self {
        Self { node_budget }
    }
}

impl Default for ExactSolver {
    fn default() -> Self {
        // Generous enough to complete on the small instances used in tests
        // and experiments while keeping worst cases bounded.
        Self::with_budget(5_000_000)
    }
}

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn guarantee(&self, _eps: f64) -> Option<f64> {
        None
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        let universe = ctx.universe();
        let result = branch_and_bound(universe, self.node_budget);
        let mut solution = Solution::empty();
        solution.selected = result.selected;
        solution.profit = result.profit;
        solution.diagnostics.lambda = 1.0;
        solution.diagnostics.optimum_upper_bound = if result.complete {
            result.profit
        } else {
            total_profit_bound(universe)
        };
        solution.diagnostics.dual_objective = solution.diagnostics.optimum_upper_bound;
        solution
    }
}

/// Exact weighted-interval-scheduling DP for the single-resource,
/// fixed-interval, unit-height line special case (certified ratio 1 on
/// supported shapes).
#[derive(Debug, Clone, Copy, Default)]
pub struct IntervalDpSolver;

impl Solver for IntervalDpSolver {
    fn name(&self) -> &'static str {
        "line-interval-dp"
    }

    fn guarantee(&self, _eps: f64) -> Option<f64> {
        Some(1.0)
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        match problem.as_line() {
            Some(p) => {
                p.num_resources() == 1
                    && p.is_unit_height()
                    && p.demands().iter().all(|d| d.num_placements() == 1)
            }
            None => false,
        }
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        let universe = ctx.universe();
        let Some((profit, selected)) = weighted_interval_optimum(universe) else {
            return Solution::empty();
        };
        let mut solution = Solution::empty();
        solution.selected = selected;
        solution.profit = profit;
        solution.diagnostics.lambda = 1.0;
        solution.diagnostics.dual_objective = profit;
        solution.diagnostics.optimum_upper_bound = profit;
        solution
    }
}

/// The Panconesi–Sozio-style baseline for all-wide line instances: single
/// stage per epoch with threshold `1/(5 + ε)`, hence a `(∆ + 1)(5 + ε) =
/// (20 + ε)`-style guarantee — the bound the paper improves by a factor 5.
#[derive(Debug, Clone, Copy, Default)]
pub struct PsLineUnitSolver;

impl Solver for PsLineUnitSolver {
    fn name(&self) -> &'static str {
        "ps-line-unit"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // Lemma 3.1 with ∆ = 3 and λ = 1/(5 + ε).
        Some(4.0 * (5.0 + eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Line && problem.all_wide()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_ps_style(
            ctx.universe(),
            ctx.layering(),
            RaiseRule::Unit,
            ctx.config(),
        )
    }
}

/// The Panconesi–Sozio-style baseline for all-narrow line instances
/// (Lemma 6.1 with `λ = 1/(5 + ε)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PsLineNarrowSolver;

impl Solver for PsLineNarrowSolver {
    fn name(&self) -> &'static str {
        "ps-line-narrow"
    }

    fn guarantee(&self, eps: f64) -> Option<f64> {
        // (2∆² + 1)(5 + ε) with ∆ = 3.
        Some(19.0 * (5.0 + eps))
    }

    fn supports(&self, problem: &Problem<'_>) -> bool {
        problem.kind() == ProblemKind::Line && problem.all_narrow()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Solution {
        run_ps_style(
            ctx.universe(),
            ctx.layering(),
            RaiseRule::Narrow,
            ctx.config(),
        )
    }
}

/// Every baseline as a boxed [`Solver`]; the `netsched` facade chains this
/// after [`netsched_core::registry`].
pub fn registry() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(GreedySolver::new(GreedyOrder::Profit)),
        Box::new(GreedySolver::new(GreedyOrder::ProfitPerLength)),
        Box::new(GreedySolver::new(GreedyOrder::ShortestFirst)),
        Box::new(ExactSolver::default()),
        Box::new(IntervalDpSolver),
        Box::new(PsLineUnitSolver),
        Box::new(PsLineNarrowSolver),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_core::{AlgorithmConfig, Scheduler};
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem};
    use netsched_graph::{LineProblem, NetworkId};

    #[test]
    fn baseline_registry_runs_on_the_fixtures() {
        let tree = figure6_problem();
        let session = Scheduler::for_tree(&tree);
        let config = AlgorithmConfig::deterministic(0.1);
        for solver in registry() {
            if !solver.supports(&session.problem()) {
                continue;
            }
            let sol = session.solve_with(solver.as_ref(), &config);
            sol.verify(session.universe())
                .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
        }
    }

    #[test]
    fn exact_solver_certifies_optimality_when_complete() {
        let line = figure1_line_problem();
        let session = Scheduler::for_line(&line);
        let sol = session.solve_with(&ExactSolver::default(), &AlgorithmConfig::default());
        sol.verify(session.universe()).unwrap();
        assert!((sol.profit - 2.0).abs() < 1e-9);
        assert_eq!(sol.certified_ratio(), Some(1.0));
    }

    #[test]
    fn interval_dp_supports_only_its_shape() {
        let mut fixed = LineProblem::new(10, 1);
        fixed
            .add_interval_demand(0, 3, 2.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        assert!(IntervalDpSolver.supports(&Problem::Line(&fixed)));

        let mut windowed = LineProblem::new(10, 1);
        windowed
            .add_demand(0, 8, 2, 1.0, 1.0, vec![NetworkId::new(0)])
            .unwrap();
        assert!(!IntervalDpSolver.supports(&Problem::Line(&windowed)));
        assert!(!IntervalDpSolver.supports(&Problem::Tree(&figure6_problem())));

        let session = Scheduler::for_line(&fixed);
        let sol = session.solve_with(&IntervalDpSolver, &AlgorithmConfig::default());
        assert_eq!(sol.certified_ratio(), Some(1.0));
        assert!((sol.profit - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ps_baseline_certificates_respect_their_weaker_bound() {
        let mut p = LineProblem::new(24, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for i in 0..8u32 {
            p.add_demand(
                i * 2 % 20,
                i * 2 % 20 + 3,
                2,
                1.0 + i as f64,
                1.0,
                acc.clone(),
            )
            .unwrap();
        }
        let session = Scheduler::for_line(&p);
        let config = AlgorithmConfig::deterministic(0.2);
        let sol = session.solve_with(&PsLineUnitSolver, &config);
        sol.verify(session.universe()).unwrap();
        let bound = PsLineUnitSolver.guarantee(0.2).unwrap();
        assert!(sol.certified_ratio().unwrap_or(1.0) <= bound + 1e-6);
    }
}
