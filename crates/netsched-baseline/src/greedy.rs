//! Simple greedy baselines.
//!
//! These are not part of the paper; they serve as sanity baselines in the
//! experiment harness (a reasonable practitioner's first attempt) and as
//! differential-testing oracles for feasibility.

use netsched_core::Solution;
use netsched_graph::{DemandInstanceUniverse, InstanceId};

/// Greedy order used by [`greedy_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyOrder {
    /// Highest profit first.
    Profit,
    /// Highest profit density (profit / path length) first.
    ProfitPerLength,
    /// Shortest path first (ties by profit).
    ShortestFirst,
}

/// Greedily adds demand instances in the chosen order, keeping every
/// instance that preserves feasibility. Returns a [`Solution`] with empty
/// distributed-run diagnostics (this is a centralized heuristic).
pub fn greedy_schedule(universe: &DemandInstanceUniverse, order: GreedyOrder) -> Solution {
    let mut ids: Vec<InstanceId> = universe.instance_ids().collect();
    match order {
        GreedyOrder::Profit => ids.sort_by(|&a, &b| {
            universe
                .profit(b)
                .partial_cmp(&universe.profit(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        }),
        GreedyOrder::ProfitPerLength => ids.sort_by(|&a, &b| {
            let da = universe.profit(a) / universe.instance(a).len().max(1) as f64;
            let db = universe.profit(b) / universe.instance(b).len().max(1) as f64;
            db.partial_cmp(&da)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        }),
        GreedyOrder::ShortestFirst => ids.sort_by(|&a, &b| {
            universe
                .instance(a)
                .len()
                .cmp(&universe.instance(b).len())
                .then(
                    universe
                        .profit(b)
                        .partial_cmp(&universe.profit(a))
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.cmp(&b))
        }),
    }

    let mut selected: Vec<InstanceId> = Vec::new();
    for d in ids {
        if universe.can_add(&selected, d) {
            selected.push(d);
        }
    }
    selected.sort_unstable();
    let profit = universe.total_profit(&selected);
    let mut sol = Solution::empty();
    sol.selected = selected;
    sol.profit = profit;
    sol
}

/// Runs all three greedy orders and returns the best solution.
pub fn best_greedy(universe: &DemandInstanceUniverse) -> Solution {
    [
        GreedyOrder::Profit,
        GreedyOrder::ProfitPerLength,
        GreedyOrder::ShortestFirst,
    ]
    .into_iter()
    .map(|o| greedy_schedule(universe, o))
    .max_by(|a, b| {
        a.profit
            .partial_cmp(&b.profit)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
    .expect("three candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::fixtures::{figure1_line_problem, two_tree_problem};

    #[test]
    fn greedy_is_feasible_on_fixtures() {
        for u in [
            figure1_line_problem().universe(),
            two_tree_problem().universe(),
        ] {
            for order in [
                GreedyOrder::Profit,
                GreedyOrder::ProfitPerLength,
                GreedyOrder::ShortestFirst,
            ] {
                let sol = greedy_schedule(&u, order);
                sol.verify(&u).unwrap();
                assert!(sol.profit > 0.0);
            }
        }
    }

    #[test]
    fn greedy_is_maximal() {
        let u = two_tree_problem().universe();
        let sol = greedy_schedule(&u, GreedyOrder::Profit);
        for d in u.instance_ids() {
            if !sol.selected.contains(&d) {
                assert!(
                    !u.can_add(&sol.selected, d),
                    "greedy left an addable instance {d} on the table"
                );
            }
        }
    }

    #[test]
    fn best_greedy_dominates_each_order() {
        let u = two_tree_problem().universe();
        let best = best_greedy(&u);
        for order in [
            GreedyOrder::Profit,
            GreedyOrder::ProfitPerLength,
            GreedyOrder::ShortestFirst,
        ] {
            assert!(best.profit + 1e-12 >= greedy_schedule(&u, order).profit);
        }
    }

    #[test]
    fn greedy_profit_picks_figure1_optimum() {
        // Figure 1 heights: {A, C} and {B, C} are feasible with profit 2.
        let u = figure1_line_problem().universe();
        let sol = greedy_schedule(&u, GreedyOrder::Profit);
        assert!((sol.profit - 2.0).abs() < 1e-9);
    }
}
