//! Reconstruction of the Panconesi–Sozio distributed algorithm for line
//! networks [15, 16], the baseline the paper improves upon.
//!
//! In the language of the two-phase framework (Section 3.2 and the Remark
//! after Theorem 5.3): the demand instances are classified into length
//! groups (the same ∆ = 3 layered decomposition as Section 7), the groups
//! are processed in epochs, but **each epoch consists of a single stage**
//! whose unsatisfied-set uses the fixed threshold `1/(5 + ε)` — an instance
//! that is `1/(5 + ε)`-satisfied is ignored for the rest of the first phase.
//! The resulting slackness is only `λ = 1/(5 + ε)`, which by Lemma 3.1
//! yields a `(∆ + 1)(5 + ε) = (20 + ε)`-approximation for unit heights
//! (versus the paper's `(4 + ε)`), and by Lemma 6.1 a
//! `(2∆² + 1)(5 + ε)`-style guarantee for narrow instances (the original
//! paper's sharper analysis gives `55 + ε`).

use netsched_core::{AlgorithmConfig, DualState, RaiseRule, RunDiagnostics, Solution};
use netsched_decomp::InstanceLayering;
use netsched_distrib::{maximal_independent_set, ConflictGraph, MisStrategy, RoundStats};
use netsched_graph::{DemandInstanceUniverse, InstanceId, LineProblem, EPS};

/// Runs the Panconesi–Sozio-style first phase (single stage per epoch,
/// threshold `1/(5 + ε)`) followed by the standard second phase.
pub fn run_ps_style(
    universe: &DemandInstanceUniverse,
    layering: &InstanceLayering,
    rule: RaiseRule,
    config: &AlgorithmConfig,
) -> Solution {
    config.validate().expect("invalid algorithm configuration");
    if universe.num_instances() == 0 {
        return Solution::empty();
    }
    let threshold = 1.0 / (5.0 + config.epsilon);
    let conflict = ConflictGraph::build(universe);
    let mut duals = DualState::new(universe, rule);
    let mut stats = RoundStats::new();

    let eligible: Vec<bool> = universe
        .instance_ids()
        .map(|d| DualState::max_relative_height(universe, d) <= 1.0 + EPS)
        .collect();

    // Steps per epoch are bounded by log_{(4+ε)/4}(p_max/p_min) plus slack;
    // use a generous cap as a safety net.
    let profit_ratio = (universe.max_profit() / universe.min_profit()).max(1.0);
    let base: f64 = 1.0 + config.epsilon / 4.0;
    let step_cap = (profit_ratio.ln() / base.ln()).ceil() as u64 + 64;

    let groups = layering.groups();
    let mut stack: Vec<Vec<InstanceId>> = Vec::new();
    let mut steps = 0u64;
    let mut max_steps_per_stage = 0u64;
    let mut raised = 0u64;

    for (epoch, group) in groups.iter().enumerate() {
        let mut epoch_steps = 0u64;
        loop {
            let unsatisfied: Vec<InstanceId> = group
                .iter()
                .copied()
                .filter(|&d| eligible[d.index()] && !duals.is_xi_satisfied(universe, d, threshold))
                .collect();
            if unsatisfied.is_empty() || epoch_steps >= step_cap {
                break;
            }
            let strategy = match config.mis {
                MisStrategy::SequentialGreedy => MisStrategy::SequentialGreedy,
                MisStrategy::Luby { seed } => MisStrategy::Luby {
                    seed: seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(epoch as u64)
                        .wrapping_add(epoch_steps << 17),
                },
            };
            let mis = maximal_independent_set(&conflict, &unsatisfied, strategy, &mut stats);
            let mut messages = 0u64;
            for &d in &mis {
                duals.raise(universe, d, layering.critical(d));
                messages += conflict.degree(d) as u64;
            }
            raised += mis.len() as u64;
            stats.record_messages(messages, layering.max_critical() as u64 + 1);
            stats.record_round();
            stack.push(mis);
            epoch_steps += 1;
        }
        steps += epoch_steps;
        max_steps_per_stage = max_steps_per_stage.max(epoch_steps);
    }

    let mut selected: Vec<InstanceId> = Vec::new();
    for mis in stack.iter().rev() {
        for &d in mis {
            if universe.can_add(&selected, d) {
                selected.push(d);
            }
        }
        stats.record_round();
    }
    selected.sort_unstable();

    let lambda = universe
        .instance_ids()
        .filter(|d| eligible[d.index()])
        .map(|d| duals.lhs(universe, d) / universe.profit(d))
        .fold(1.0_f64, f64::min)
        .max(EPS);
    let dual_objective = duals.objective();
    let profit = universe.total_profit(&selected);
    let mut raised_instances: Vec<InstanceId> = stack.iter().flatten().copied().collect();
    raised_instances.sort_unstable();

    Solution {
        selected,
        raised_instances,
        profit,
        stats,
        diagnostics: RunDiagnostics {
            epochs: groups.len(),
            stages_per_epoch: 1,
            steps,
            max_steps_per_stage,
            raised,
            delta: layering.max_critical(),
            lambda,
            dual_objective,
            optimum_upper_bound: dual_objective / lambda,
            quality: netsched_core::CertificateQuality::Full,
        },
    }
}

/// The Panconesi–Sozio baseline for the unit-height case of line networks
/// with windows (the `(20 + ε)`-approximation of [16]). Instance ids refer
/// to `problem.universe()`.
pub fn solve_ps_line_unit(problem: &LineProblem, config: &AlgorithmConfig) -> Solution {
    let universe = problem.universe();
    let layering = InstanceLayering::line_length_classes(&universe);
    run_ps_style(&universe, &layering, RaiseRule::Unit, config)
}

/// The Panconesi–Sozio-style baseline for the narrow (arbitrary-height)
/// case of line networks with windows. Instance ids refer to
/// `problem.universe()`.
pub fn solve_ps_line_narrow(problem: &LineProblem, config: &AlgorithmConfig) -> Solution {
    let universe = problem.universe();
    let layering = InstanceLayering::line_length_classes(&universe);
    run_ps_style(&universe, &layering, RaiseRule::Narrow, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_core::solve_line_unit;
    use netsched_graph::NetworkId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_line_problem(seed: u64, n: u32, r: usize, m: usize) -> LineProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = LineProblem::new(n as usize, r);
        let acc_all: Vec<NetworkId> = (0..r).map(NetworkId::new).collect();
        for _ in 0..m {
            let len = rng.gen_range(1..=(n / 4).max(1));
            let release = rng.gen_range(0..=(n - len));
            let slack = rng.gen_range(0..=(n - release - len).min(5));
            p.add_demand(
                release,
                release + len - 1 + slack,
                len,
                rng.gen_range(1.0..=16.0),
                1.0,
                acc_all.clone(),
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn ps_baseline_is_feasible_and_has_weaker_certificate() {
        for seed in 0..3u64 {
            let p = random_line_problem(seed, 40, 2, 16);
            let u = p.universe();
            let cfg = AlgorithmConfig::deterministic(0.2);
            let ps = solve_ps_line_unit(&p, &cfg);
            let ours = solve_line_unit(&p, &cfg);
            ps.verify(&u).unwrap();
            ours.verify(&u).unwrap();
            // The PS slackness is at most 1/(5 + ε) by construction — it
            // stops raising as soon as that threshold is met — so its
            // certified ratio bound is (∆+1)(5+ε) = 20+ε, much weaker than
            // ours.
            assert!(ps.diagnostics.lambda <= 1.0);
            assert!(ours.diagnostics.lambda >= 1.0 - 0.2 - 1e-9);
            // Both respect their own Lemma 3.1 certificate.
            assert!(ps.certified_ratio().unwrap() <= 4.0 * (5.0 + 0.2) + 1e-6);
            assert!(ours.certified_ratio().unwrap() <= 4.0 / (1.0 - 0.2) + 1e-6);
        }
    }

    #[test]
    fn ps_achieves_its_threshold_slackness() {
        // At the end of the PS first phase every instance is at least
        // 1/(5 + ε)-satisfied; the improved algorithm reaches 1 − ε.
        let p = random_line_problem(7, 30, 1, 12);
        let cfg = AlgorithmConfig::deterministic(0.2);
        let ps = solve_ps_line_unit(&p, &cfg);
        let ours = solve_line_unit(&p, &cfg);
        assert!(ps.diagnostics.lambda >= 1.0 / (5.0 + 0.2) - 1e-9);
        assert!(ours.diagnostics.lambda >= 1.0 - 0.2 - 1e-9);
        // The improved slackness yields a tighter optimum upper bound for
        // the same dual-objective scale: report both so the experiment
        // harness can tabulate the factor-5 improvement of the guarantee.
        assert!(ps.certified_ratio().unwrap() >= 1.0 - 1e-9);
        assert!(ours.certified_ratio().unwrap() >= 1.0 - 1e-9);
    }

    #[test]
    fn ps_narrow_variant_is_feasible() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut p = LineProblem::new(30, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for _ in 0..15 {
            let len = rng.gen_range(1..=6u32);
            let release = rng.gen_range(0..=(30 - len));
            p.add_demand(
                release,
                release + len - 1,
                len,
                rng.gen_range(1.0..8.0),
                rng.gen_range(0.1..=0.5),
                acc.clone(),
            )
            .unwrap();
        }
        let u = p.universe();
        let sol = solve_ps_line_narrow(&p, &AlgorithmConfig::deterministic(0.2));
        sol.verify(&u).unwrap();
        assert!(sol.profit > 0.0);
    }

    #[test]
    fn empty_problem_yields_empty_solution() {
        let p = LineProblem::new(10, 1);
        let sol = solve_ps_line_unit(&p, &AlgorithmConfig::default());
        assert!(sol.is_empty());
    }
}
