//! Optimum upper bounds used by the experiment harness.
//!
//! For small instances the branch-and-bound solver gives the exact optimum;
//! for larger instances the experiments fall back to upper bounds: the dual
//! certificate carried by every [`netsched_core::Solution`] (weak duality,
//! Section 3) and two cheap combinatorial bounds implemented here.

use netsched_core::Solution;
use netsched_graph::{DemandInstanceUniverse, GlobalEdge, NetworkId};

/// The trivial bound: the sum of all demand profits (each demand counted
/// once).
pub fn total_profit_bound(universe: &DemandInstanceUniverse) -> f64 {
    let mut best_per_demand = vec![0.0f64; universe.num_demands()];
    for inst in universe.instances() {
        let slot = &mut best_per_demand[inst.demand.index()];
        *slot = slot.max(inst.profit);
    }
    best_per_demand.iter().sum()
}

/// A single-edge cut bound for single-network instances.
///
/// For any edge `e`, a feasible solution packs at most `c(e)` units of
/// height through `e`, so the profit of the selected instances crossing `e`
/// is at most `c(e) · max_{d ∼ e} p(d)/h(d)`; instances not crossing `e` are
/// bounded by their total profit. Taking the minimum over all edges gives a
/// cheap, sound (if often loose) upper bound. Multi-network instances fall
/// back to [`total_profit_bound`]; experiments on those should rely on the
/// dual certificate instead.
pub fn edge_cut_bound(universe: &DemandInstanceUniverse) -> f64 {
    if universe.num_networks() != 1 || universe.num_instances() == 0 {
        return total_profit_bound(universe);
    }
    let network = NetworkId::new(0);
    let mut best = f64::INFINITY;
    for e in 0..universe.num_edges(network) {
        let edge = netsched_graph::EdgeId::new(e);
        let mut crossing_profit = 0.0;
        let mut max_density: f64 = 0.0;
        for inst in universe.instances() {
            if inst.path.contains(edge) {
                crossing_profit += inst.profit;
                max_density = max_density.max(inst.profit / inst.height.max(f64::MIN_POSITIVE));
            }
        }
        // Demands with no instance through this edge are unconstrained by
        // it; bound them by their profit (once per demand).
        let mut non_crossing = 0.0;
        let mut seen = vec![false; universe.num_demands()];
        for inst in universe.instances() {
            if !inst.path.contains(edge) && !seen[inst.demand.index()] {
                seen[inst.demand.index()] = true;
                non_crossing += inst.profit;
            }
        }
        let cap = universe.capacity(GlobalEdge::new(network, edge));
        let crossing_bound = crossing_profit.min(cap * max_density);
        best = best.min(non_crossing + crossing_bound);
    }
    best.min(total_profit_bound(universe))
}

/// The best available upper bound: the minimum of the combinatorial bounds
/// and the dual certificates of any solutions already computed.
pub fn best_upper_bound(universe: &DemandInstanceUniverse, solutions: &[&Solution]) -> f64 {
    let mut ub = total_profit_bound(universe).min(edge_cut_bound(universe));
    for s in solutions {
        if s.diagnostics.optimum_upper_bound > 0.0 {
            ub = ub.min(s.diagnostics.optimum_upper_bound);
        }
    }
    ub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_optimum;
    use netsched_graph::fixtures::{figure1_line_problem, figure6_problem, two_tree_problem};

    #[test]
    fn bounds_dominate_the_optimum() {
        for u in [
            figure1_line_problem().universe(),
            figure6_problem().universe(),
            two_tree_problem().universe(),
        ] {
            let opt = exact_optimum(&u).profit;
            assert!(total_profit_bound(&u) + 1e-9 >= opt);
            assert!(edge_cut_bound(&u) + 1e-9 >= opt);
        }
    }

    #[test]
    fn total_profit_bound_counts_each_demand_once() {
        let u = two_tree_problem().universe();
        // Demands have profits 3.0, 2.0, 2.5 → bound 7.5 even though there
        // are 5 instances.
        assert!((total_profit_bound(&u) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn best_upper_bound_uses_dual_certificates() {
        let p = figure6_problem();
        let u = p.universe();
        let sol =
            netsched_core::solve_unit_tree(&p, &netsched_core::AlgorithmConfig::deterministic(0.1));
        let ub = best_upper_bound(&u, &[&sol]);
        let opt = exact_optimum(&u).profit;
        assert!(ub + 1e-9 >= opt);
        assert!(ub <= total_profit_bound(&u) + 1e-9);
    }

    #[test]
    fn edge_cut_bound_tightens_single_bottleneck_instances() {
        // All demands cross one shared edge with unit heights: the optimum
        // is the single most profitable demand, and the cut bound sees it.
        use netsched_graph::{TreeProblem, VertexId};
        let mut p = TreeProblem::new(4);
        let t = p
            .add_network(vec![
                (VertexId(0), VertexId(1)),
                (VertexId(1), VertexId(2)),
                (VertexId(2), VertexId(3)),
            ])
            .unwrap();
        p.add_unit_demand(VertexId(0), VertexId(2), 4.0, vec![t])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(3), 3.0, vec![t])
            .unwrap();
        p.add_unit_demand(VertexId(1), VertexId(2), 2.0, vec![t])
            .unwrap();
        let u = p.universe();
        let bound = edge_cut_bound(&u);
        // Every demand crosses edge (1,2); the bound via that edge is
        // max profit/height · capacity = 4.
        assert!((bound - 4.0).abs() < 1e-9);
        assert!((exact_optimum(&u).profit - 4.0).abs() < 1e-9);
    }
}
