//! Workload generators, named scenarios and instance serialization for
//! `netsched`.
//!
//! The paper has no public benchmark suite, so the experiment harness
//! generates synthetic instances: random tree topologies of several shapes,
//! windowed line workloads with controllable length/profit spreads, and
//! height distributions for the narrow/wide split. All generators are
//! seeded and therefore reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod demand_gen;
pub mod dynamic;
pub mod fault;
pub mod framing;
pub mod io;
pub mod json;
pub mod line_gen;
pub mod multi_net;
pub mod scenarios;
pub mod tree_gen;

pub use demand_gen::{DemandSpec, HeightDistribution, ProfitDistribution};
pub use dynamic::{
    poisson_arrivals_line, poisson_arrivals_tree, ChurnSpec, EventTrace, TraceEvent,
};
pub use fault::FaultPlan;
pub use framing::{append_frame, crc32, encode_frame, scan_frames, FrameError, FrameScan};
pub use line_gen::{LineWorkload, LineWorkloadBuilder};
pub use multi_net::{
    many_networks_line, many_networks_tree, skewed_networks_line, skewed_networks_tree,
};
pub use scenarios::{named_scenarios, scenario_by_name, scenario_index, Scenario};
pub use tree_gen::{random_tree_edges, tree_problem, TreeTopology, TreeWorkload};
