//! Random windowed line-network workload generation (Section 7 setting).

use crate::demand_gen::{DemandSpec, HeightDistribution, ProfitDistribution};
use netsched_graph::{GraphError, LineProblem, NetworkId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of a random windowed line workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LineWorkload {
    /// Number of timeslots (`n`).
    pub timeslots: u32,
    /// Number of resources (`r`).
    pub resources: usize,
    /// Number of demands (`m`).
    pub demands: usize,
    /// Smallest processing time (`L_min`).
    pub min_length: u32,
    /// Largest processing time (`L_max`).
    pub max_length: u32,
    /// Maximum window slack (extra room beyond the processing time); 0 means
    /// fixed intervals.
    pub max_slack: u32,
    /// Probability that a processor can access any given resource (at least
    /// one access is always granted).
    pub access_probability: f64,
    /// Skew exponent for the per-resource access probability: resource `t`
    /// is accessible with probability `access_probability / (t + 1)^skew`
    /// (see [`crate::tree_gen::skewed_access_probability`]); 0.0 keeps
    /// every resource equally likely.
    pub access_skew: f64,
    /// Profit distribution.
    pub profits: ProfitDistribution,
    /// Height distribution.
    pub heights: HeightDistribution,
    /// Random seed.
    pub seed: u64,
}

impl Default for LineWorkload {
    fn default() -> Self {
        Self {
            timeslots: 64,
            resources: 2,
            demands: 50,
            min_length: 1,
            max_length: 16,
            max_slack: 8,
            access_probability: 0.7,
            access_skew: 0.0,
            profits: ProfitDistribution::Uniform {
                min: 1.0,
                max: 32.0,
            },
            heights: HeightDistribution::Unit,
            seed: 0,
        }
    }
}

impl LineWorkload {
    /// Materializes the workload as a [`LineProblem`].
    pub fn build(&self) -> Result<LineProblem, GraphError> {
        assert!(self.min_length >= 1 && self.min_length <= self.max_length);
        assert!(self.max_length <= self.timeslots);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut problem = LineProblem::new(self.timeslots as usize, self.resources);
        let all: Vec<NetworkId> = (0..self.resources).map(NetworkId::new).collect();
        for _ in 0..self.demands {
            let spec = DemandSpec::sample(&self.profits, &self.heights, &mut rng);
            let len = rng.gen_range(self.min_length..=self.max_length);
            let release = rng.gen_range(0..=(self.timeslots - len));
            let slack = rng.gen_range(0..=self.max_slack.min(self.timeslots - release - len));
            let mut access: Vec<NetworkId> = all
                .iter()
                .enumerate()
                .filter(|&(t, _)| {
                    rng.gen_bool(crate::tree_gen::skewed_access_probability(
                        self.access_probability,
                        self.access_skew,
                        t,
                    ))
                })
                .map(|(_, &net)| net)
                .collect();
            if access.is_empty() {
                access.push(all[rng.gen_range(0..all.len())]);
            }
            problem.add_demand(
                release,
                release + len - 1 + slack,
                len,
                spec.profit,
                spec.height,
                access,
            )?;
        }
        Ok(problem)
    }
}

/// Builder-style construction for sweeps in the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct LineWorkloadBuilder {
    workload: LineWorkload,
}

impl LineWorkloadBuilder {
    /// Starts from the default workload.
    pub fn new() -> Self {
        Self {
            workload: LineWorkload::default(),
        }
    }

    /// Sets the number of timeslots.
    pub fn timeslots(mut self, n: u32) -> Self {
        self.workload.timeslots = n;
        self
    }

    /// Sets the number of resources.
    pub fn resources(mut self, r: usize) -> Self {
        self.workload.resources = r;
        self
    }

    /// Sets the number of demands.
    pub fn demands(mut self, m: usize) -> Self {
        self.workload.demands = m;
        self
    }

    /// Sets the processing-time range.
    pub fn lengths(mut self, min: u32, max: u32) -> Self {
        self.workload.min_length = min;
        self.workload.max_length = max;
        self
    }

    /// Sets the maximum window slack.
    pub fn slack(mut self, s: u32) -> Self {
        self.workload.max_slack = s;
        self
    }

    /// Sets the profit distribution.
    pub fn profits(mut self, p: ProfitDistribution) -> Self {
        self.workload.profits = p;
        self
    }

    /// Sets the height distribution.
    pub fn heights(mut self, h: HeightDistribution) -> Self {
        self.workload.heights = h;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.workload.seed = s;
        self
    }

    /// Returns the configured workload description.
    pub fn finish(self) -> LineWorkload {
        self.workload
    }

    /// Builds the problem directly.
    pub fn build(self) -> Result<LineProblem, GraphError> {
        self.workload.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workload_builds_and_is_reproducible() {
        let w = LineWorkload::default();
        let a = w.build().unwrap();
        let b = w.build().unwrap();
        assert_eq!(a.num_demands(), 50);
        assert_eq!(a.num_resources(), 2);
        for (x, y) in a.demands().iter().zip(b.demands()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn lengths_and_windows_respect_bounds() {
        let w = LineWorkloadBuilder::new()
            .timeslots(40)
            .lengths(2, 8)
            .slack(4)
            .demands(30)
            .seed(9)
            .finish();
        let p = w.build().unwrap();
        let (lmax, lmin) = p.length_bounds();
        assert!(lmin >= 2 && lmax <= 8);
        for d in p.demands() {
            assert!(d.deadline < 40);
            assert!(d.window_len() >= d.processing);
            assert!(d.window_len() - d.processing <= 4);
        }
    }

    #[test]
    fn zero_slack_gives_fixed_intervals() {
        let p = LineWorkloadBuilder::new()
            .slack(0)
            .demands(20)
            .seed(5)
            .build()
            .unwrap();
        for d in p.demands() {
            assert_eq!(d.num_placements(), 1);
        }
    }

    #[test]
    fn builder_round_trips_every_field() {
        let w = LineWorkloadBuilder::new()
            .timeslots(100)
            .resources(4)
            .demands(10)
            .lengths(3, 9)
            .slack(2)
            .profits(ProfitDistribution::Constant(2.0))
            .heights(HeightDistribution::Narrow { min: 0.1 })
            .seed(77)
            .finish();
        assert_eq!(w.timeslots, 100);
        assert_eq!(w.resources, 4);
        assert_eq!(w.demands, 10);
        assert_eq!((w.min_length, w.max_length), (3, 9));
        assert_eq!(w.max_slack, 2);
        assert_eq!(w.seed, 77);
        let p = w.build().unwrap();
        assert!(p
            .demands()
            .iter()
            .all(|d| d.profit == 2.0 && d.height <= 0.5));
    }
}
