//! Multi-network workload generators for the sharded conflict engine.
//!
//! The sharded universe (`netsched-graph::ShardedUniverse`) partitions
//! instances by network, so its interesting workloads have *many* networks
//! — both balanced (every shard roughly the same size) and skewed (a few
//! hot networks own most instances, the regime where static shard
//! scheduling is hardest). These generators parameterize the existing
//! [`TreeWorkload`]/[`LineWorkload`] descriptions for exactly those shapes;
//! [`crate::scenarios::named_scenarios`] registers instances of each so the
//! scenario index, the end-to-end suite and the `shard_scaling` bench all
//! draw from the same definitions.

use crate::demand_gen::{HeightDistribution, ProfitDistribution};
use crate::line_gen::LineWorkload;
use crate::tree_gen::{TreeTopology, TreeWorkload};

/// A balanced many-network line workload: `networks` identical timeline
/// resources, every demand accessible on a few of them uniformly, so the
/// shards end up roughly equal-sized.
pub fn many_networks_line(networks: usize, demands: usize, seed: u64) -> LineWorkload {
    assert!(networks >= 1);
    LineWorkload {
        timeslots: 96,
        resources: networks,
        demands,
        min_length: 2,
        max_length: 20,
        max_slack: 8,
        // Keep the expected accessible-resource count at ~3 regardless of
        // the shard count, so instance counts scale with `demands`, not
        // with `networks`.
        access_probability: (3.0 / networks as f64).min(1.0),
        access_skew: 0.0,
        profits: ProfitDistribution::Uniform {
            min: 1.0,
            max: 32.0,
        },
        heights: HeightDistribution::Unit,
        seed,
    }
}

/// A balanced many-network tree workload: `networks` random spanning trees
/// over a shared vertex set.
pub fn many_networks_tree(networks: usize, demands: usize, seed: u64) -> TreeWorkload {
    assert!(networks >= 1);
    TreeWorkload {
        vertices: 72,
        networks,
        demands,
        topology: TreeTopology::RandomAttachment,
        access_probability: (3.0 / networks as f64).min(1.0),
        access_skew: 0.0,
        profits: ProfitDistribution::Uniform {
            min: 1.0,
            max: 32.0,
        },
        heights: HeightDistribution::Unit,
        seed,
    }
}

/// A skewed-shard line workload: resource `t` is accessible with
/// probability `∝ 1/(t+1)^skew`, so low-indexed resources own most
/// instances and the shard sizes follow a power law.
pub fn skewed_networks_line(networks: usize, demands: usize, skew: f64, seed: u64) -> LineWorkload {
    let mut w = many_networks_line(networks, demands, seed);
    // Anchor the hottest resource near certainty, then decay.
    w.access_probability = 0.9;
    w.access_skew = skew;
    w
}

/// A skewed-shard tree workload; see [`skewed_networks_line`].
pub fn skewed_networks_tree(networks: usize, demands: usize, skew: f64, seed: u64) -> TreeWorkload {
    let mut w = many_networks_tree(networks, demands, seed);
    w.access_probability = 0.9;
    w.access_skew = skew;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsched_graph::NetworkId;

    #[test]
    fn many_networks_line_spreads_instances_evenly() {
        let w = many_networks_line(8, 120, 11);
        let p = w.build().unwrap();
        assert_eq!(p.num_resources(), 8);
        let u = p.universe();
        let sizes: Vec<usize> = (0..8)
            .map(|t| u.instances_on_network(NetworkId::new(t)).len())
            .collect();
        assert!(sizes.iter().all(|&s| s > 0), "every shard populated");
        let (min, max) = (
            *sizes.iter().min().unwrap() as f64,
            *sizes.iter().max().unwrap() as f64,
        );
        assert!(max / min < 8.0, "balanced shards: {sizes:?}");
    }

    #[test]
    fn many_networks_tree_builds_valid_problems() {
        let w = many_networks_tree(12, 90, 5);
        let p = w.build().unwrap();
        p.validate().unwrap();
        assert_eq!(p.num_networks(), 12);
        assert_eq!(p.num_demands(), 90);
    }

    #[test]
    fn skewed_workloads_concentrate_on_low_indexed_networks() {
        let w = skewed_networks_line(8, 160, 1.5, 77);
        let u = w.build().unwrap().universe();
        let sizes: Vec<usize> = (0..8)
            .map(|t| u.instances_on_network(NetworkId::new(t)).len())
            .collect();
        // The hottest shard dominates the coldest by a wide margin.
        assert!(
            sizes[0] > 4 * sizes[7].max(1),
            "expected skewed shard sizes: {sizes:?}"
        );
        let tree = skewed_networks_tree(6, 80, 1.5, 3).build().unwrap();
        let tu = tree.universe();
        let first = tu.instances_on_network(NetworkId::new(0)).len();
        let last = tu.instances_on_network(NetworkId::new(5)).len();
        assert!(first > last, "tree skew: {first} vs {last}");
    }

    #[test]
    fn zero_skew_reproduces_the_uniform_stream() {
        // access_skew = 0 must consume the RNG exactly like the pre-skew
        // generator, so problems built from old seeds stay bit-identical.
        // Golden values pinned from the generator at the time the skew knob
        // was introduced: any change to the draw count or order for
        // skew = 0 shifts the stream and trips these.
        let p = many_networks_line(4, 40, 9).build().unwrap();
        let golden = [
            (0usize, 23u32, 36u32, 13u32, 19.569982053003375f64),
            (17, 76, 81, 2, 24.501961805009298),
            (39, 80, 89, 5, 28.962148151020724),
        ];
        for &(i, release, deadline, processing, profit) in &golden {
            let d = &p.demands()[i];
            assert_eq!(d.release, release, "demand {i}");
            assert_eq!(d.deadline, deadline, "demand {i}");
            assert_eq!(d.processing, processing, "demand {i}");
            assert_eq!(d.profit, profit, "demand {i}");
        }
        let access: Vec<usize> = p
            .access(p.demands()[17].id)
            .iter()
            .map(|t| t.index())
            .collect();
        assert_eq!(access, vec![0, 1, 3]);
    }
}
