//! Deterministic fault schedules for robustness testing.
//!
//! A [`FaultPlan`] scripts the I/O and solve faults a harness wants a run
//! to survive: failed or short (torn) write-ahead appends, fsync errors,
//! injected append latency, and epochs whose solve should panic. Plans
//! are *schedules*, not probabilities — every fault fires at an exact
//! operation index (or epoch), so a failing run replays bit-for-bit.
//!
//! The plan itself is pure data. `netsched-persist` installs one into its
//! write-ahead log shim (`DurableSession::inject_faults`), which counts
//! append and sync operations and consults the plan at each; the service
//! layer consumes [`FaultPlan::panic_epochs`] through
//! `ServiceSession::inject_solve_panics`. Keeping the plan here lets the
//! workload/scenario layer describe fault campaigns alongside the demand
//! traces they run against.

/// A scripted schedule of injected faults, addressed by **operation
/// index**: the persist layer counts write-ahead appends and syncs from
/// the moment the plan is installed (each counter starting at 0), and a
/// fault fires when its counter hits a listed index.
///
/// The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Append operations (0-based since plan installation) whose write
    /// fails outright — no bytes of the frame reach the log.
    pub fail_append_ops: Vec<u64>,
    /// Append operations that tear: a strict prefix of the frame is
    /// written before the write errors, leaving a torn frame for the
    /// retry (or recovery scan) to deal with.
    pub short_append_ops: Vec<u64>,
    /// Sync operations (0-based; batch-mode appends and epoch/snapshot
    /// fsyncs share one counter) whose `fsync` fails.
    pub fail_sync_ops: Vec<u64>,
    /// Extra latency, in microseconds, injected into **every** append —
    /// a slow-disk model for exercising deadline-bounded epochs.
    pub slow_append_micros: u64,
    /// Epochs (the epoch the step would advance the session *to*) whose
    /// solve panics; consumed by `ServiceSession::inject_solve_panics`
    /// to exercise per-batch quarantine.
    pub panic_epochs: Vec<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules append failures at the given operation indices.
    pub fn fail_appends(mut self, ops: impl IntoIterator<Item = u64>) -> Self {
        self.fail_append_ops.extend(ops);
        self
    }

    /// Schedules torn (short) appends at the given operation indices.
    pub fn short_appends(mut self, ops: impl IntoIterator<Item = u64>) -> Self {
        self.short_append_ops.extend(ops);
        self
    }

    /// Schedules fsync failures at the given sync-operation indices.
    pub fn fail_syncs(mut self, ops: impl IntoIterator<Item = u64>) -> Self {
        self.fail_sync_ops.extend(ops);
        self
    }

    /// Injects the given latency into every append.
    pub fn slow_appends(mut self, micros: u64) -> Self {
        self.slow_append_micros = micros;
        self
    }

    /// Schedules solve panics at the given epochs.
    pub fn panic_at_epochs(mut self, epochs: impl IntoIterator<Item = u64>) -> Self {
        self.panic_epochs.extend(epochs);
        self
    }

    /// `true` when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }

    /// Should the append with this operation index fail without writing?
    pub fn fails_append(&self, op: u64) -> bool {
        self.fail_append_ops.contains(&op)
    }

    /// Should the append with this operation index tear mid-frame?
    pub fn tears_append(&self, op: u64) -> bool {
        self.short_append_ops.contains(&op)
    }

    /// Should the sync with this operation index fail?
    pub fn fails_sync(&self, op: u64) -> bool {
        self.fail_sync_ops.contains(&op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_and_predicates_read_back() {
        let plan = FaultPlan::none()
            .fail_appends([0, 3])
            .short_appends([1])
            .fail_syncs([2, 2])
            .slow_appends(50)
            .panic_at_epochs([4]);
        assert!(!plan.is_empty());
        assert!(plan.fails_append(0) && plan.fails_append(3) && !plan.fails_append(1));
        assert!(plan.tears_append(1) && !plan.tears_append(0));
        assert!(plan.fails_sync(2) && !plan.fails_sync(0));
        assert_eq!(plan.slow_append_micros, 50);
        assert_eq!(plan.panic_epochs, vec![4]);
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
    }
}
