//! Framed, length-prefixed, checksummed records — the wire format of the
//! durable serving tier's write-ahead log (`netsched-persist`).
//!
//! A **frame** is `[len: u32 LE][crc32: u32 LE][payload: len bytes]`: the
//! payload is opaque (the log stores rendered [`json`](crate::json)
//! documents) and the CRC-32 (IEEE 802.3, the zlib/PNG polynomial) covers
//! exactly the payload bytes. The format is deliberately dumb: no
//! compression, no escape sequences, no sync markers — a log is an
//! append-only concatenation of frames, and recovery is defined as the
//! **longest valid prefix**: [`scan_frames`] walks frames from offset 0 and
//! stops at the first truncated header, truncated payload, oversized length
//! or checksum mismatch. Everything before the cut is trusted; everything
//! after it — including frames that would individually re-validate — is
//! dropped, because a corrupt length prefix makes every later frame
//! boundary unreliable. The scan still *counts* the structurally plausible
//! records of the dropped suffix so callers can surface how much was lost.

/// Frames larger than this are treated as corruption (a flipped length
/// byte can otherwise masquerade as a multi-gigabyte frame and defeat the
/// truncation checks).
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 26;

/// Bytes of the `[len][crc32]` frame header.
pub const FRAME_HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3 / zlib polynomial `0xEDB88320`), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Appends one `[len][crc32][payload]` frame to `buf`.
pub fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD as usize,
        "frame payload exceeds MAX_FRAME_PAYLOAD"
    );
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Encodes one payload as a standalone frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    append_frame(&mut buf, payload);
    buf
}

/// Why a frame scan stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remained at `offset`.
    TruncatedHeader {
        /// Byte offset of the cut.
        offset: usize,
    },
    /// The header at `offset` announced more payload bytes than remain.
    TruncatedPayload {
        /// Byte offset of the offending frame's header.
        offset: usize,
    },
    /// The header at `offset` announced a payload larger than
    /// [`MAX_FRAME_PAYLOAD`].
    OversizedLength {
        /// Byte offset of the offending frame's header.
        offset: usize,
    },
    /// The payload at `offset` failed its CRC-32 check.
    ChecksumMismatch {
        /// Byte offset of the offending frame's header.
        offset: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedHeader { offset } => {
                write!(f, "truncated frame header at byte {offset}")
            }
            FrameError::TruncatedPayload { offset } => {
                write!(f, "truncated frame payload at byte {offset}")
            }
            FrameError::OversizedLength { offset } => {
                write!(f, "implausible frame length at byte {offset}")
            }
            FrameError::ChecksumMismatch { offset } => {
                write!(f, "frame checksum mismatch at byte {offset}")
            }
        }
    }
}

/// The result of scanning a buffer of concatenated frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// The payloads of the valid prefix, in order.
    pub frames: Vec<Vec<u8>>,
    /// Bytes of the valid prefix — truncating the log file to this length
    /// removes the corrupt suffix.
    pub valid_len: usize,
    /// Records discarded with the corrupt suffix: the offending frame plus
    /// every structurally plausible frame after it (their boundaries are
    /// untrusted, so they are counted but never decoded). Zero when the
    /// whole buffer is valid.
    pub dropped_frames: usize,
    /// The corruption that ended the scan, if any.
    pub error: Option<FrameError>,
}

/// Splits a buffer into its longest valid frame prefix; see the
/// [module docs](self) for the recovery semantics.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some((len, stored_crc)) = read_header(bytes, offset) else {
            return corrupt(
                frames,
                offset,
                FrameError::TruncatedHeader { offset },
                bytes,
                offset, // nothing decodable past a partial header
            );
        };
        if len > MAX_FRAME_PAYLOAD as usize {
            return corrupt(
                frames,
                offset,
                FrameError::OversizedLength { offset },
                bytes,
                offset,
            );
        }
        let payload_start = offset + FRAME_HEADER_LEN;
        let Some(payload) = bytes.get(payload_start..payload_start + len) else {
            return corrupt(
                frames,
                offset,
                FrameError::TruncatedPayload { offset },
                bytes,
                offset,
            );
        };
        if crc32(payload) != stored_crc {
            // The length was plausible, so the *next* boundary is known:
            // salvage-count the remaining records without trusting them.
            return corrupt(
                frames,
                offset,
                FrameError::ChecksumMismatch { offset },
                bytes,
                payload_start + len,
            );
        }
        frames.push(payload.to_vec());
        offset = payload_start + len;
    }
    FrameScan {
        frames,
        valid_len: offset,
        dropped_frames: 0,
        error: None,
    }
}

fn read_header(bytes: &[u8], offset: usize) -> Option<(usize, u32)> {
    let header = bytes.get(offset..offset + FRAME_HEADER_LEN)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    Some((len, crc))
}

/// Builds the scan result for a corrupt suffix starting at `valid_len`:
/// one dropped record for the offending frame, plus a structural
/// salvage-count of plausible frames from `resume` on.
fn corrupt(
    frames: Vec<Vec<u8>>,
    valid_len: usize,
    error: FrameError,
    bytes: &[u8],
    mut resume: usize,
) -> FrameScan {
    let mut dropped = 1usize;
    while resume < bytes.len() {
        match read_header(bytes, resume) {
            Some((len, _))
                if len <= MAX_FRAME_PAYLOAD as usize
                    && resume + FRAME_HEADER_LEN + len <= bytes.len() =>
            {
                dropped += 1;
                resume += FRAME_HEADER_LEN + len;
            }
            _ => break,
        }
    }
    FrameScan {
        frames,
        valid_len,
        dropped_frames: dropped,
        error: Some(error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_of_several_frames() {
        let mut buf = Vec::new();
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"epoch\": 3}"];
        for p in &payloads {
            append_frame(&mut buf, p);
        }
        let scan = scan_frames(&buf);
        assert!(scan.error.is_none());
        assert_eq!(scan.dropped_frames, 0);
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.frames, payloads);
    }

    #[test]
    fn empty_buffer_is_a_valid_empty_log() {
        let scan = scan_frames(&[]);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.dropped_frames, 0);
        assert!(scan.error.is_none());
    }

    #[test]
    fn truncated_tail_recovers_the_prefix() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        append_frame(&mut buf, b"second");
        let cut = buf.len() - 3; // mid-payload of the second frame
        let scan = scan_frames(&buf[..cut]);
        assert_eq!(scan.frames, vec![b"first".to_vec()]);
        assert_eq!(scan.dropped_frames, 1);
        assert!(matches!(
            scan.error,
            Some(FrameError::TruncatedPayload { .. })
        ));
        // Truncating to valid_len leaves a clean log.
        let rescan = scan_frames(&buf[..scan.valid_len]);
        assert!(rescan.error.is_none());
        assert_eq!(rescan.frames.len(), 1);
    }

    #[test]
    fn flipped_checksum_byte_drops_the_suffix_but_counts_it() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"one");
        let corrupt_at = buf.len();
        append_frame(&mut buf, b"two");
        append_frame(&mut buf, b"three");
        buf[corrupt_at + 4] ^= 0xFF; // flip a CRC byte of frame "two"
        let scan = scan_frames(&buf);
        assert_eq!(scan.frames, vec![b"one".to_vec()]);
        assert_eq!(scan.valid_len, corrupt_at);
        // The corrupt frame plus the (structurally plausible but untrusted)
        // one after it.
        assert_eq!(scan.dropped_frames, 2);
        assert!(matches!(
            scan.error,
            Some(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = (MAX_FRAME_PAYLOAD + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 12]);
        let scan = scan_frames(&buf);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(matches!(
            scan.error,
            Some(FrameError::OversizedLength { .. })
        ));
    }
}
