//! Dynamic event-trace generators for the serving subsystem.
//!
//! A static workload describes one demand set; a **trace** describes how a
//! demand set evolves: per-epoch batches of arrivals and expiries. The
//! generators here model Poisson *tenant-replacement* traffic against a
//! standing demand pool:
//!
//! * arrivals per epoch are `Poisson(churn × pool size)` — the `churn` knob
//!   is the expected fraction of the pool replaced per epoch, so by
//!   Little's law a demand lives `≈ 1/churn` epochs on average;
//! * each epoch's traffic concentrates on a small **focus set** of
//!   networks (a tenant's job array lands on one machine, a rack drains):
//!   arrivals draw their access sets from the focus networks, and expiries
//!   retire the oldest live demands whose access touches the focus — the
//!   drain-and-refill pattern of per-machine job replacement. This is the
//!   regime the incremental per-shard rebuild targets: one epoch dirties
//!   `O(focus)` shards, not all of them. `focus = 0` disables the locality
//!   (every network in focus, arrivals spread, oldest demands expire
//!   regardless of placement);
//! * access sets reuse the base workload's `access_probability` and
//!   `access_skew` (restricted to the focus set), like the static
//!   generators.
//!
//! Traces are neutral data ([`TraceEvent`] / [`EventTrace`]): expiries name
//! the *arrival index* of the demand they retire (initial demands are
//! arrivals `0..m₀`, traced arrivals continue from `m₀` in generation
//! order), which maps 1:1 onto the service layer's tickets.

use crate::demand_gen::DemandSpec;
use crate::line_gen::LineWorkload;
use crate::tree_gen::{skewed_access_probability, TreeWorkload};
use netsched_graph::{NetworkId, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The churn profile of a dynamic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Number of epochs (batches) to generate.
    pub epochs: usize,
    /// Expected fraction of the demand pool replaced per epoch, in
    /// `(0, 1]`; mean demand lifetime is `≈ 1/churn` epochs.
    pub churn: f64,
    /// Number of networks each epoch's traffic concentrates on (sampled
    /// per epoch); 0 disables the locality.
    pub focus: usize,
    /// Seed of the trace stream (independent of the base workload's seed).
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        Self {
            epochs: 32,
            churn: 0.05,
            focus: 2,
            seed: 0,
        }
    }
}

/// One event of a dynamic trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A tree demand arrives.
    ArriveTree {
        /// One route end-point.
        u: VertexId,
        /// The other route end-point.
        v: VertexId,
        /// Profit.
        profit: f64,
        /// Height.
        height: f64,
        /// Accessible networks.
        access: Vec<NetworkId>,
    },
    /// A windowed line demand arrives.
    ArriveLine {
        /// Release time.
        release: u32,
        /// Deadline (inclusive).
        deadline: u32,
        /// Processing time.
        processing: u32,
        /// Profit.
        profit: f64,
        /// Height.
        height: f64,
        /// Accessible resources.
        access: Vec<NetworkId>,
    },
    /// The demand admitted as arrival number `arrival` expires (initial
    /// demands count as arrivals `0..m₀`).
    Expire {
        /// Global arrival index of the retiring demand.
        arrival: usize,
    },
}

impl TraceEvent {
    /// `true` for arrival events.
    pub fn is_arrival(&self) -> bool {
        !matches!(self, TraceEvent::Expire { .. })
    }
}

/// A generated dynamic trace: one event batch per epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventTrace {
    /// The per-epoch event batches.
    pub batches: Vec<Vec<TraceEvent>>,
}

impl EventTrace {
    /// Total number of events over all batches.
    pub fn num_events(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Total number of arrivals over all batches.
    pub fn num_arrivals(&self) -> usize {
        self.batches
            .iter()
            .flatten()
            .filter(|e| e.is_arrival())
            .count()
    }
}

/// Knuth's product-of-uniforms Poisson sampler; fine for the per-epoch
/// arrival intensities traces use (λ ≲ 100).
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples this epoch's focus set: `focus` distinct networks (all of them
/// when `focus` is 0 or covers everything).
fn sample_focus(rng: &mut StdRng, networks: usize, focus: usize) -> Vec<usize> {
    if focus == 0 || focus >= networks {
        return (0..networks).collect();
    }
    let mut pool: Vec<usize> = (0..networks).collect();
    for i in 0..focus {
        let j = rng.gen_range(i..networks);
        pool.swap(i, j);
    }
    pool.truncate(focus);
    pool.sort_unstable();
    pool
}

/// Draws an access set from the focus networks with the base generators'
/// skewed per-network probability (skew indexed by the *global* network
/// id), guaranteeing at least one accessible network.
fn sample_access(
    rng: &mut StdRng,
    focus: &[usize],
    base_probability: f64,
    skew: f64,
) -> Vec<NetworkId> {
    let mut access: Vec<NetworkId> = focus
        .iter()
        .filter(|&&t| rng.gen_bool(skewed_access_probability(base_probability, skew, t)))
        .map(|&t| NetworkId::new(t))
        .collect();
    if access.is_empty() {
        access.push(NetworkId::new(focus[rng.gen_range(0..focus.len())]));
    }
    access
}

/// The live pool the generators simulate: arrival index plus access set,
/// oldest first. Expiries retire the oldest demand touching the focus —
/// FIFO per tenant locality.
struct Pool {
    live: Vec<(usize, Vec<usize>)>,
}

impl Pool {
    fn expire_on_focus(&mut self, focus: &[usize], count: usize) -> Vec<usize> {
        // Single forward compaction pass instead of repeated `Vec::remove`
        // (which made a large pool's epoch quadratic): retirees are the
        // first `count` focus-touching entries in pool order, survivors
        // keep their FIFO order — identical output to the removal loop.
        let mut retired = Vec::with_capacity(count);
        let mut w = 0;
        for r in 0..self.live.len() {
            let touches = retired.len() < count
                && self.live[r]
                    .1
                    .iter()
                    .any(|t| focus.binary_search(t).is_ok());
            if touches {
                retired.push(self.live[r].0);
            } else {
                self.live.swap(w, r);
                w += 1;
            }
        }
        self.live.truncate(w);
        retired
    }

    fn admit(&mut self, arrival: usize, access: &[NetworkId]) {
        self.live
            .push((arrival, access.iter().map(|t| t.index()).collect()));
    }
}

/// Generates a Poisson tenant-replacement trace against a line workload's
/// demand pool. The base workload describes the *initial* pool (what the
/// service session is seeded with — its access sets are re-derived by
/// replaying the workload build) and the arrival distributions; the spec
/// describes the churn. See the [module docs](self).
pub fn poisson_arrivals_line(base: &LineWorkload, spec: &ChurnSpec) -> EventTrace {
    assert!(
        spec.churn > 0.0 && spec.churn <= 1.0,
        "churn must lie in (0, 1], got {}",
        spec.churn
    );
    let problem = base.build().expect("base workload builds");
    let mut pool = Pool {
        live: problem
            .demands()
            .iter()
            .map(|d| {
                (
                    d.id.index(),
                    problem.access(d.id).iter().map(|t| t.index()).collect(),
                )
            })
            .collect(),
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut arrivals = base.demands;
    let mut batches = Vec::with_capacity(spec.epochs);
    for _ in 0..spec.epochs {
        let focus = sample_focus(&mut rng, base.resources, spec.focus);
        let lambda = spec.churn * base.demands as f64;
        let mut batch: Vec<TraceEvent> = pool
            .expire_on_focus(&focus, poisson(&mut rng, lambda))
            .into_iter()
            .map(|arrival| TraceEvent::Expire { arrival })
            .collect();
        for _ in 0..poisson(&mut rng, lambda) {
            let spec_d = DemandSpec::sample(&base.profits, &base.heights, &mut rng);
            let len = rng.gen_range(base.min_length..=base.max_length);
            let release = rng.gen_range(0..=(base.timeslots - len));
            let slack = rng.gen_range(0..=base.max_slack.min(base.timeslots - release - len));
            let access = sample_access(&mut rng, &focus, base.access_probability, base.access_skew);
            pool.admit(arrivals, &access);
            batch.push(TraceEvent::ArriveLine {
                release,
                deadline: release + len - 1 + slack,
                processing: len,
                profit: spec_d.profit,
                height: spec_d.height,
                access,
            });
            arrivals += 1;
        }
        batches.push(batch);
    }
    EventTrace { batches }
}

/// Generates a Poisson tenant-replacement trace against a tree workload's
/// demand pool; see [`poisson_arrivals_line`].
pub fn poisson_arrivals_tree(base: &TreeWorkload, spec: &ChurnSpec) -> EventTrace {
    assert!(
        spec.churn > 0.0 && spec.churn <= 1.0,
        "churn must lie in (0, 1], got {}",
        spec.churn
    );
    let problem = base.build().expect("base workload builds");
    let mut pool = Pool {
        live: problem
            .demands()
            .iter()
            .map(|d| {
                (
                    d.id.index(),
                    problem.access(d.id).iter().map(|t| t.index()).collect(),
                )
            })
            .collect(),
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut arrivals = base.demands;
    let mut batches = Vec::with_capacity(spec.epochs);
    for _ in 0..spec.epochs {
        let focus = sample_focus(&mut rng, base.networks, spec.focus);
        let lambda = spec.churn * base.demands as f64;
        let mut batch: Vec<TraceEvent> = pool
            .expire_on_focus(&focus, poisson(&mut rng, lambda))
            .into_iter()
            .map(|arrival| TraceEvent::Expire { arrival })
            .collect();
        for _ in 0..poisson(&mut rng, lambda) {
            let spec_d = DemandSpec::sample(&base.profits, &base.heights, &mut rng);
            let u = rng.gen_range(0..base.vertices);
            let mut v = rng.gen_range(0..base.vertices);
            while v == u {
                v = rng.gen_range(0..base.vertices);
            }
            let access = sample_access(&mut rng, &focus, base.access_probability, base.access_skew);
            pool.admit(arrivals, &access);
            batch.push(TraceEvent::ArriveTree {
                u: VertexId::new(u),
                v: VertexId::new(v),
                profit: spec_d.profit,
                height: spec_d.height,
                access,
            });
            arrivals += 1;
        }
        batches.push(batch);
    }
    EventTrace { batches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_net::{many_networks_line, many_networks_tree};

    fn spec() -> ChurnSpec {
        ChurnSpec {
            epochs: 24,
            churn: 0.1,
            focus: 2,
            seed: 7,
        }
    }

    #[test]
    fn traces_are_reproducible_and_well_formed() {
        let base = many_networks_line(8, 60, 3);
        let a = poisson_arrivals_line(&base, &spec());
        let b = poisson_arrivals_line(&base, &spec());
        assert_eq!(a, b);
        assert_eq!(a.batches.len(), 24);
        assert!(a.num_arrivals() > 0);
        assert!(a.num_events() > a.num_arrivals(), "expiries present");
        // Every expiry names an arrival that happened no later.
        let mut arrivals = base.demands;
        for batch in &a.batches {
            for event in batch {
                if let TraceEvent::Expire { arrival } = event {
                    assert!(*arrival < arrivals, "expiry of a future arrival");
                }
            }
            arrivals += batch.iter().filter(|e| e.is_arrival()).count();
        }
    }

    #[test]
    fn no_arrival_expires_twice() {
        let base = many_networks_tree(6, 50, 11);
        let trace = poisson_arrivals_tree(&base, &spec());
        let mut seen = std::collections::HashSet::new();
        for event in trace.batches.iter().flatten() {
            if let TraceEvent::Expire { arrival } = event {
                assert!(seen.insert(*arrival), "arrival {arrival} expired twice");
            }
        }
    }

    #[test]
    fn focus_limits_the_networks_a_batch_arrives_on() {
        let base = many_networks_line(8, 80, 5);
        let trace = poisson_arrivals_line(&base, &spec());
        for batch in &trace.batches {
            let mut nets = std::collections::HashSet::new();
            for event in batch {
                if let TraceEvent::ArriveLine { access, .. } = event {
                    assert!(!access.is_empty());
                    nets.extend(access.iter().map(|t| t.index()));
                }
            }
            assert!(
                nets.len() <= 2,
                "arrivals focused on ≤ 2 networks: {nets:?}"
            );
        }
    }

    #[test]
    fn churn_holds_the_pool_near_its_target() {
        let base = many_networks_tree(8, 80, 13);
        let trace = poisson_arrivals_tree(
            &base,
            &ChurnSpec {
                epochs: 60,
                ..spec()
            },
        );
        let mut live = base.demands as i64;
        for batch in &trace.batches {
            for event in batch {
                live += if event.is_arrival() { 1 } else { -1 };
            }
        }
        let drift = (live - base.demands as i64).abs();
        assert!(
            drift < base.demands as i64 / 2,
            "pool drifted too far: {live} vs target {}",
            base.demands
        );
    }

    #[test]
    fn zero_focus_spreads_arrivals() {
        let base = many_networks_tree(6, 60, 2);
        let trace = poisson_arrivals_tree(
            &base,
            &ChurnSpec {
                focus: 0,
                epochs: 40,
                ..spec()
            },
        );
        let mut nets = std::collections::HashSet::new();
        for event in trace.batches.iter().flatten() {
            if let TraceEvent::ArriveTree { access, .. } = event {
                nets.extend(access.iter().map(|t| t.index()));
            }
        }
        assert!(nets.len() > 2, "unfocused arrivals reach many networks");
    }
}
