//! A small hand-rolled JSON layer replacing the former `serde`/`serde_json`
//! dependency (the build environment has no crates.io access).
//!
//! [`JsonValue`] is a plain JSON document tree with a recursive-descent
//! parser and a pretty printer; [`ToJson`] / [`FromJson`] are the
//! serialization traits implemented by the workload descriptions and problem
//! types that the experiment harness persists. The problem types serialize
//! through their public constructor API (edges, capacities, demands), so
//! deserialization always yields fully indexed, queryable problems.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Largest integer exactly representable in an `f64` (2^53).
const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys are sorted for stable output.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience numeric constructor.
    pub fn num(x: f64) -> JsonValue {
        JsonValue::Number(x)
    }

    /// Convenience integer constructor.
    pub fn int(x: usize) -> JsonValue {
        JsonValue::Number(x as f64)
    }

    /// The value of an object field, or an error naming the missing key.
    pub fn field(&self, key: &str) -> Result<&JsonValue, String> {
        match self {
            JsonValue::Object(map) => map.get(key).ok_or_else(|| format!("missing field `{key}`")),
            other => Err(format!("expected object with field `{key}`, got {other:?}")),
        }
    }

    /// The numeric value, or an error.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The numeric value as a `usize`, or an error (rejects values outside
    /// the exactly-representable integer range of `f64`).
    pub fn as_usize(&self) -> Result<usize, String> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 || x > MAX_SAFE_INTEGER {
            return Err(format!("expected non-negative integer (<= 2^53), got {x}"));
        }
        usize::try_from(x as u64).map_err(|_| format!("integer {x} out of usize range"))
    }

    /// A `u64`, either from an exactly-representable JSON number or from a
    /// decimal string (how [`ToJson`] implementations serialize values that
    /// may exceed 2^53, e.g. workload seeds).
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            JsonValue::String(text) => text
                .parse::<u64>()
                .map_err(|_| format!("expected u64 string, got `{text}`")),
            _ => {
                let x = self.as_f64()?;
                if x < 0.0 || x.fract() != 0.0 || x > MAX_SAFE_INTEGER {
                    return Err(format!("expected non-negative integer (<= 2^53), got {x}"));
                }
                Ok(x as u64)
            }
        }
    }

    /// Serializes a `u64` without loss: a plain number while exactly
    /// representable in `f64`, a decimal string beyond that.
    pub fn u64_value(x: u64) -> JsonValue {
        if (x as f64) <= MAX_SAFE_INTEGER && x as f64 as u64 == x {
            JsonValue::Number(x as f64)
        } else {
            JsonValue::String(x.to_string())
        }
    }

    /// The numeric value as a `u32`, or an error.
    pub fn as_u32(&self) -> Result<u32, String> {
        let x = self.as_usize()?;
        u32::try_from(x).map_err(|_| format!("integer {x} out of u32 range"))
    }

    /// The string value, or an error.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The array elements, or an error.
    pub fn as_array(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// Pretty-prints the document with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Number(x) => render_number(out, *x),
            JsonValue::String(s) => render_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad_in);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad_in);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_number(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", token as char, *pos))
    }
}

/// Parses the four hex digits of a `\\uXXXX` escape starting at `start`.
fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes.get(start..start + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    JsonValue::String(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(JsonValue::String(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let mut code = parse_hex4(bytes, *pos + 1)?;
                                *pos += 4;
                                if (0xD800..0xDC00).contains(&code) {
                                    // UTF-16 high surrogate: a low surrogate
                                    // escape must follow (standard JSON
                                    // encoding of non-BMP characters).
                                    if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                        return Err("unpaired UTF-16 surrogate".to_string());
                                    }
                                    let low = parse_hex4(bytes, *pos + 3)?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err("invalid UTF-16 low surrogate".to_string());
                                    }
                                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    *pos += 6;
                                }
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid \\u code point".to_string())?,
                                );
                            }
                            other => return Err(format!("invalid escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multi-byte aware).
                        let rest = &bytes[*pos..];
                        let text = std::str::from_utf8(rest)
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let c = text.chars().next().unwrap();
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') => {
            if bytes[*pos..].starts_with(b"true") {
                *pos += 4;
                Ok(JsonValue::Bool(true))
            } else {
                Err(format!("invalid literal at byte {pos}", pos = *pos))
            }
        }
        Some(b'f') => {
            if bytes[*pos..].starts_with(b"false") {
                *pos += 5;
                Ok(JsonValue::Bool(false))
            } else {
                Err(format!("invalid literal at byte {pos}", pos = *pos))
            }
        }
        Some(b'n') => {
            if bytes[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(JsonValue::Null)
            } else {
                Err(format!("invalid literal at byte {pos}", pos = *pos))
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if start == *pos {
                return Err(format!("unexpected character at byte {pos}", pos = *pos));
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| format!("invalid number `{text}`"))
        }
    }
}

/// Types that serialize to a [`JsonValue`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> JsonValue;
}

/// Types that deserialize from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Reconstructs the value, with a descriptive error on malformed input.
    fn from_json(value: &JsonValue) -> Result<Self, String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = JsonValue::object(vec![
            ("name", JsonValue::String("net \"x\"\n".to_string())),
            ("count", JsonValue::int(42)),
            ("ratio", JsonValue::num(0.125)),
            ("flag", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::int(1), JsonValue::int(2)]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let text = doc.render();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(JsonValue::parse("{not json").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("{}}").is_err());
        assert!(JsonValue::parse("12e").is_err());
    }

    #[test]
    fn field_accessors() {
        let doc = JsonValue::parse("{\"a\": 3, \"b\": [1.5], \"c\": \"x\"}").unwrap();
        assert_eq!(doc.field("a").unwrap().as_usize().unwrap(), 3);
        assert_eq!(doc.field("b").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(doc.field("c").unwrap().as_str().unwrap(), "x");
        assert!(doc.field("missing").is_err());
        assert!(doc.field("c").unwrap().as_f64().is_err());
        assert!(doc.field("b").unwrap().as_array().unwrap()[0]
            .as_usize()
            .is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_unpaired_surrogates_error() {
        let doc = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(doc.as_str().unwrap(), "\u{1F600}");
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
        assert!(JsonValue::parse("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn oversized_numbers_are_rejected_not_saturated() {
        let doc = JsonValue::parse("{\"vertices\": 1e30}").unwrap();
        assert!(doc.field("vertices").unwrap().as_usize().is_err());
        assert!(doc.field("vertices").unwrap().as_u64().is_err());
    }

    #[test]
    fn u64_values_roundtrip_exactly() {
        for x in [0u64, 42, (1 << 53) - 1, (1 << 60) + 1, u64::MAX] {
            let rendered = JsonValue::u64_value(x).render();
            let back = JsonValue::parse(&rendered).unwrap().as_u64().unwrap();
            assert_eq!(back, x, "u64 {x} did not roundtrip");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let doc = JsonValue::parse("\"caf\\u00e9 \\t π\"").unwrap();
        assert_eq!(doc.as_str().unwrap(), "café \t π");
    }
}
