//! Named scenarios: concrete, motivated instances used by the examples and
//! the experiment harness.
//!
//! The paper's introduction motivates the problem with processors/agents
//! competing for exclusive routes on shared communication networks; these
//! scenarios instantiate that story at a small, inspectable scale and also
//! re-export the worked figures of the paper.

use crate::demand_gen::{HeightDistribution, ProfitDistribution};
use crate::dynamic::ChurnSpec;
use crate::line_gen::LineWorkload;
use crate::multi_net::{many_networks_line, many_networks_tree, skewed_networks_line};
use crate::tree_gen::{TreeTopology, TreeWorkload};
use fxhash::FxHashMap;
use netsched_graph::fixtures;
use netsched_graph::{LineProblem, TreeProblem};

/// A named scenario: either a tree-network or a line-network instance,
/// optionally with a dynamic churn profile (the serving-subsystem
/// scenarios; `None` for the static ones).
#[derive(Debug, Clone)]
pub enum Scenario {
    /// A tree-network scheduling scenario.
    Tree {
        /// Name used in tables and examples.
        name: String,
        /// Description of the story behind the instance.
        description: String,
        /// The generated workload.
        workload: TreeWorkload,
        /// Dynamic churn profile, when the scenario is a serving trace
        /// (see [`crate::dynamic::poisson_arrivals_tree`]).
        churn: Option<ChurnSpec>,
    },
    /// A windowed line-network scheduling scenario.
    Line {
        /// Name used in tables and examples.
        name: String,
        /// Description of the story behind the instance.
        description: String,
        /// The generated workload.
        workload: LineWorkload,
        /// Dynamic churn profile, when the scenario is a serving trace
        /// (see [`crate::dynamic::poisson_arrivals_line`]).
        churn: Option<ChurnSpec>,
    },
}

impl Scenario {
    /// The scenario name.
    pub fn name(&self) -> &str {
        match self {
            Scenario::Tree { name, .. } | Scenario::Line { name, .. } => name,
        }
    }

    /// The scenario description.
    pub fn description(&self) -> &str {
        match self {
            Scenario::Tree { description, .. } | Scenario::Line { description, .. } => description,
        }
    }

    /// The scenario's churn profile, when it is a dynamic serving trace.
    pub fn churn(&self) -> Option<&ChurnSpec> {
        match self {
            Scenario::Tree { churn, .. } | Scenario::Line { churn, .. } => churn.as_ref(),
        }
    }
}

/// The standard set of named scenarios used by examples and experiments.
pub fn named_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::Tree {
            name: "datacenter-spanning-trees".to_string(),
            description: "Pairs of racks exchange bulk data over one of several \
                          spanning trees of the datacenter fabric; each transfer \
                          needs an exclusive lightpath (unit height)."
                .to_string(),
            workload: TreeWorkload {
                vertices: 96,
                networks: 4,
                demands: 120,
                topology: TreeTopology::RandomAttachment,
                access_probability: 0.5,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 64.0,
                },
                heights: HeightDistribution::Unit,
                seed: 2013,
            },
            churn: None,
        },
        Scenario::Tree {
            name: "sensor-aggregation-trees".to_string(),
            description: "Sensor clusters stream readings to analysis nodes over \
                          aggregation trees with limited per-link bandwidth; \
                          flows request fractional bandwidth (arbitrary heights)."
                .to_string(),
            workload: TreeWorkload {
                vertices: 64,
                networks: 3,
                demands: 90,
                topology: TreeTopology::Caterpillar,
                access_probability: 0.7,
                access_skew: 0.0,
                profits: ProfitDistribution::PowerOfTwo { exponents: 6 },
                heights: HeightDistribution::Mixed {
                    wide_fraction: 0.3,
                    min_narrow: 0.1,
                },
                seed: 99,
            },
            churn: None,
        },
        Scenario::Line {
            name: "batch-jobs-with-deadlines".to_string(),
            description: "Batch jobs with release times, deadlines and processing \
                          times compete for a small pool of identical machines; \
                          each machine is a timeline resource (Section 7 with \
                          windows, unit height)."
                .to_string(),
            workload: LineWorkload {
                timeslots: 96,
                resources: 3,
                demands: 80,
                min_length: 1,
                max_length: 24,
                max_slack: 12,
                access_probability: 0.8,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 32.0,
                },
                heights: HeightDistribution::Unit,
                seed: 7,
            },
            churn: None,
        },
        Scenario::Line {
            name: "bandwidth-reservations".to_string(),
            description: "Advance bandwidth reservations on parallel links: each \
                          request needs a fraction of a link's capacity for a \
                          contiguous time window (arbitrary heights)."
                .to_string(),
            workload: LineWorkload {
                timeslots: 72,
                resources: 2,
                demands: 70,
                min_length: 2,
                max_length: 18,
                max_slack: 6,
                access_probability: 0.9,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 16.0,
                },
                heights: HeightDistribution::Mixed {
                    wide_fraction: 0.25,
                    min_narrow: 0.05,
                },
                seed: 31,
            },
            churn: None,
        },
        Scenario::Line {
            name: "many-networks-line".to_string(),
            description: "A fleet of 16 identical machine timelines with jobs \
                          spread evenly across them: one shard per machine, \
                          balanced shard sizes (the sharded conflict engine's \
                          happy path)."
                .to_string(),
            workload: many_networks_line(16, 140, 1601),
            churn: None,
        },
        Scenario::Tree {
            name: "many-networks-tree".to_string(),
            description: "Twelve spanning trees of one shared fabric with \
                          transfers routed over a few trees each: many \
                          medium shards for shard-parallel sweeps and MIS \
                          epochs."
                .to_string(),
            workload: many_networks_tree(12, 110, 1202),
            churn: None,
        },
        Scenario::Line {
            name: "skewed-shards-line".to_string(),
            description: "Eight machine timelines with power-law popularity: \
                          the first machine owns most reservations, the last \
                          almost none — the skewed shard sizes that stress \
                          shard-parallel load balance."
                .to_string(),
            workload: skewed_networks_line(8, 130, 1.5, 813),
            churn: None,
        },
        Scenario::Line {
            name: "churn-line".to_string(),
            description: "A serving pool of 8 machine timelines under \
                          continuous traffic: jobs arrive in per-epoch \
                          tenant bursts focused on two machines, run for \
                          ~1/churn epochs and expire — the dynamic-service \
                          regime where each epoch dirties only the focused \
                          shards."
                .to_string(),
            workload: LineWorkload {
                timeslots: 128,
                resources: 8,
                demands: 360,
                min_length: 2,
                max_length: 24,
                max_slack: 20,
                access_probability: 0.02,
                access_skew: 0.0,
                profits: ProfitDistribution::Constant(8.0),
                heights: HeightDistribution::Unit,
                seed: 2024,
            },
            churn: Some(ChurnSpec {
                epochs: 40,
                churn: 0.05,
                focus: 1,
                seed: 20240,
            }),
        },
        Scenario::Tree {
            name: "churn-tree".to_string(),
            description: "Eight spanning trees of a shared fabric serving \
                          transfer requests that arrive in bursts against \
                          two trees per epoch and expire after ~1/churn \
                          epochs: the tree-shaped dynamic-service \
                          counterpart of churn-line."
                .to_string(),
            workload: TreeWorkload {
                vertices: 128,
                networks: 8,
                demands: 180,
                topology: TreeTopology::RandomAttachment,
                access_probability: 0.02,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform {
                    min: 1.0,
                    max: 32.0,
                },
                heights: HeightDistribution::Unit,
                seed: 2025,
            },
            churn: Some(ChurnSpec {
                epochs: 40,
                churn: 0.05,
                focus: 2,
                seed: 20250,
            }),
        },
        Scenario::Line {
            name: "mega-churn-line".to_string(),
            description: "The serving tier at fleet scale: 100k short jobs \
                          live across 256 machine timelines of 4096 slots, \
                          with per-epoch tenant bursts focused on two \
                          machines. Sized so the live set is ~10⁵ demands \
                          while per-shard conflict density stays bounded — \
                          the regime the arena layouts and allocation-free \
                          splice path target."
                .to_string(),
            workload: LineWorkload {
                timeslots: 4096,
                resources: 256,
                demands: 100_000,
                min_length: 2,
                max_length: 6,
                max_slack: 2,
                access_probability: 0.004,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform { min: 1.0, max: 8.0 },
                heights: HeightDistribution::Unit,
                seed: 2026,
            },
            churn: Some(ChurnSpec {
                epochs: 64,
                churn: 0.0005,
                focus: 2,
                seed: 20260,
            }),
        },
        Scenario::Tree {
            name: "mega-churn-tree".to_string(),
            description: "Fleet-scale transfer serving on trees: 100k \
                          routes across 256 spanning trees of a 1024-vertex \
                          fabric, arriving in two-tree tenant bursts and \
                          expiring after ~1/churn epochs — the tree-shaped \
                          counterpart of mega-churn-line."
                .to_string(),
            workload: TreeWorkload {
                vertices: 1024,
                networks: 256,
                demands: 100_000,
                topology: TreeTopology::RandomAttachment,
                access_probability: 0.005,
                access_skew: 0.0,
                profits: ProfitDistribution::Uniform { min: 1.0, max: 8.0 },
                heights: HeightDistribution::Unit,
                seed: 2027,
            },
            churn: Some(ChurnSpec {
                epochs: 64,
                churn: 0.0005,
                focus: 2,
                seed: 20270,
            }),
        },
    ]
}

/// The named scenarios indexed by name (deterministic Fx-hashed map, so
/// iteration order is reproducible across runs).
pub fn scenario_index() -> FxHashMap<String, Scenario> {
    named_scenarios()
        .into_iter()
        .map(|s| (s.name().to_string(), s))
        .collect()
}

/// Looks up a named scenario (a linear scan of [`named_scenarios`], the
/// same single source [`scenario_index`] is built from, so the two lookup
/// paths cannot drift apart).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    named_scenarios().into_iter().find(|s| s.name() == name)
}

/// The worked example of Figure 1 (three jobs of heights 0.5, 0.7, 0.4 on a
/// single resource), re-exported for convenience.
pub fn figure1_problem() -> LineProblem {
    fixtures::figure1_line_problem()
}

/// The worked example of Figure 6 / Section 4 (the 14-vertex tree with the
/// demand ⟨4, 13⟩), re-exported for convenience.
pub fn figure6_problem() -> TreeProblem {
    fixtures::figure6_problem()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_valid_problems() {
        for scenario in named_scenarios() {
            // The mega scenarios carry 10⁵ demands; build a same-shaped
            // miniature here so the debug-mode test stays fast (full-size
            // builds are exercised by the mega_scale bench).
            match &scenario {
                Scenario::Tree { workload, .. } => {
                    let mut workload = workload.clone();
                    workload.demands = workload.demands.min(2000);
                    let p = workload.build().unwrap();
                    p.validate().unwrap();
                    assert_eq!(p.num_demands(), workload.demands);
                }
                Scenario::Line { workload, .. } => {
                    let mut workload = workload.clone();
                    workload.demands = workload.demands.min(2000);
                    let p = workload.build().unwrap();
                    assert_eq!(p.num_demands(), workload.demands);
                }
            }
            assert!(!scenario.name().is_empty());
            assert!(!scenario.description().is_empty());
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let scenarios = named_scenarios();
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn figure_reexports_work() {
        assert_eq!(figure1_problem().num_demands(), 3);
        assert_eq!(figure6_problem().num_networks(), 1);
    }

    #[test]
    fn index_and_lookup_agree() {
        let index = scenario_index();
        assert_eq!(index.len(), named_scenarios().len());
        for scenario in named_scenarios() {
            assert!(index.contains_key(scenario.name()));
            assert_eq!(
                scenario_by_name(scenario.name()).map(|s| s.name().to_string()),
                Some(scenario.name().to_string())
            );
        }
        assert!(scenario_by_name("no-such-scenario").is_none());
    }
}
