//! Random tree-network workload generation.

use crate::demand_gen::{DemandSpec, HeightDistribution, ProfitDistribution};
use netsched_graph::{GraphError, NetworkId, TreeProblem, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shapes of random tree topologies used in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTopology {
    /// Uniform random attachment: vertex `i` attaches to a uniformly random
    /// earlier vertex (yields trees of logarithmic expected depth).
    RandomAttachment,
    /// Preferential-attachment-flavoured trees (new vertices attach to
    /// vertices proportionally to degree + 1), producing high-degree hubs.
    PreferentialAttachment,
    /// A path: the line-network shape (worst case for root-fixing depth).
    Path,
    /// A star: one hub adjacent to everything.
    Star,
    /// A caterpillar: a spine of `n/2` vertices with a leaf on each.
    Caterpillar,
    /// A complete binary tree.
    BinaryTree,
}

impl TreeTopology {
    /// All topologies, handy for sweeps.
    pub fn all() -> [TreeTopology; 6] {
        [
            TreeTopology::RandomAttachment,
            TreeTopology::PreferentialAttachment,
            TreeTopology::Path,
            TreeTopology::Star,
            TreeTopology::Caterpillar,
            TreeTopology::BinaryTree,
        ]
    }

    /// A short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            TreeTopology::RandomAttachment => "random",
            TreeTopology::PreferentialAttachment => "pref-attach",
            TreeTopology::Path => "path",
            TreeTopology::Star => "star",
            TreeTopology::Caterpillar => "caterpillar",
            TreeTopology::BinaryTree => "binary",
        }
    }
}

/// Generates the edge list of a tree of the chosen topology on `n` vertices.
pub fn random_tree_edges(
    topology: TreeTopology,
    n: usize,
    rng: &mut StdRng,
) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 1);
    match topology {
        TreeTopology::RandomAttachment => (1..n)
            .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
            .collect(),
        TreeTopology::PreferentialAttachment => {
            let mut degree = vec![0usize; n];
            let mut edges = Vec::with_capacity(n.saturating_sub(1));
            for i in 1..n {
                // Weight earlier vertices by degree + 1.
                let total: usize = degree[..i].iter().map(|d| d + 1).sum();
                let mut pick = rng.gen_range(0..total);
                let mut target = 0;
                for (j, &d) in degree[..i].iter().enumerate() {
                    let w = d + 1;
                    if pick < w {
                        target = j;
                        break;
                    }
                    pick -= w;
                }
                degree[target] += 1;
                degree[i] += 1;
                edges.push((VertexId::new(target), VertexId::new(i)));
            }
            edges
        }
        TreeTopology::Path => (1..n)
            .map(|i| (VertexId::new(i - 1), VertexId::new(i)))
            .collect(),
        TreeTopology::Star => (1..n)
            .map(|i| (VertexId::new(0), VertexId::new(i)))
            .collect(),
        TreeTopology::Caterpillar => {
            let spine = n.div_ceil(2);
            let mut edges: Vec<(VertexId, VertexId)> = (1..spine)
                .map(|i| (VertexId::new(i - 1), VertexId::new(i)))
                .collect();
            for leaf in spine..n {
                edges.push((VertexId::new(leaf - spine), VertexId::new(leaf)));
            }
            edges
        }
        TreeTopology::BinaryTree => (1..n)
            .map(|i| (VertexId::new((i - 1) / 2), VertexId::new(i)))
            .collect(),
    }
}

/// Description of a random tree-network workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeWorkload {
    /// Number of vertices per network.
    pub vertices: usize,
    /// Number of networks (`r`).
    pub networks: usize,
    /// Number of demands (`m`).
    pub demands: usize,
    /// Topology of every network.
    pub topology: TreeTopology,
    /// Probability that a processor can access any given network (at least
    /// one access is always granted).
    pub access_probability: f64,
    /// Skew exponent for the per-network access probability: network `t`
    /// is accessible with probability `access_probability / (t + 1)^skew`.
    /// 0.0 (the default) keeps every network equally likely; larger values
    /// concentrate instances on the low-indexed networks, producing the
    /// skewed shard sizes the sharded conflict engine is benchmarked on.
    pub access_skew: f64,
    /// Profit distribution.
    pub profits: ProfitDistribution,
    /// Height distribution.
    pub heights: HeightDistribution,
    /// Random seed.
    pub seed: u64,
}

impl Default for TreeWorkload {
    fn default() -> Self {
        Self {
            vertices: 64,
            networks: 3,
            demands: 60,
            topology: TreeTopology::RandomAttachment,
            access_probability: 0.6,
            access_skew: 0.0,
            profits: ProfitDistribution::Uniform {
                min: 1.0,
                max: 32.0,
            },
            heights: HeightDistribution::Unit,
            seed: 0,
        }
    }
}

impl TreeWorkload {
    /// Materializes the workload as a [`TreeProblem`].
    pub fn build(&self) -> Result<TreeProblem, GraphError> {
        tree_problem(self)
    }
}

/// The per-network access probability under a skew exponent:
/// `base / (t + 1)^skew`, clamped into `[0, 1]`. A skew of 0 keeps the
/// uniform behaviour (and the exact demand streams of earlier seeds).
pub fn skewed_access_probability(base: f64, skew: f64, t: usize) -> f64 {
    (base * ((t + 1) as f64).powf(-skew)).clamp(0.0, 1.0)
}

/// Materializes a [`TreeWorkload`] into a [`TreeProblem`].
pub fn tree_problem(w: &TreeWorkload) -> Result<TreeProblem, GraphError> {
    assert!(w.vertices >= 2, "need at least two vertices for demands");
    let mut rng = StdRng::seed_from_u64(w.seed);
    let mut problem = TreeProblem::new(w.vertices);
    let mut networks = Vec::new();
    for _ in 0..w.networks {
        let edges = random_tree_edges(w.topology, w.vertices, &mut rng);
        networks.push(problem.add_network(edges)?);
    }
    for _ in 0..w.demands {
        let spec = DemandSpec::sample(&w.profits, &w.heights, &mut rng);
        let u = rng.gen_range(0..w.vertices);
        let mut v = rng.gen_range(0..w.vertices);
        while v == u {
            v = rng.gen_range(0..w.vertices);
        }
        let mut access: Vec<NetworkId> = networks
            .iter()
            .enumerate()
            .filter(|&(t, _)| {
                rng.gen_bool(skewed_access_probability(
                    w.access_probability,
                    w.access_skew,
                    t,
                ))
            })
            .map(|(_, &net)| net)
            .collect();
        if access.is_empty() {
            access.push(networks[rng.gen_range(0..networks.len())]);
        }
        problem.add_demand(
            VertexId::new(u),
            VertexId::new(v),
            spec.profit,
            spec.height,
            access,
        )?;
    }
    Ok(problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_yield_valid_trees() {
        let mut rng = StdRng::seed_from_u64(1);
        for topology in TreeTopology::all() {
            for n in [2usize, 5, 17, 64] {
                let edges = random_tree_edges(topology, n, &mut rng);
                let t = netsched_graph::TreeNetwork::new(NetworkId::new(0), n, edges)
                    .unwrap_or_else(|e| panic!("{topology:?} n={n}: {e}"));
                assert_eq!(t.num_edges(), n - 1);
            }
        }
    }

    #[test]
    fn workload_is_reproducible() {
        let w = TreeWorkload {
            seed: 42,
            ..TreeWorkload::default()
        };
        let a = w.build().unwrap();
        let b = w.build().unwrap();
        assert_eq!(a.num_demands(), b.num_demands());
        for (da, db) in a.demands().iter().zip(b.demands()) {
            assert_eq!(da, db);
        }
    }

    #[test]
    fn workload_respects_counts_and_heights() {
        let w = TreeWorkload {
            vertices: 32,
            networks: 2,
            demands: 40,
            heights: HeightDistribution::Uniform { min: 0.2, max: 0.5 },
            ..TreeWorkload::default()
        };
        let p = w.build().unwrap();
        assert_eq!(p.num_networks(), 2);
        assert_eq!(p.num_demands(), 40);
        for d in p.demands() {
            assert!(d.height >= 0.2 - 1e-12 && d.height <= 0.5 + 1e-12);
            assert!(!p.access(d.id).is_empty());
        }
        p.validate().unwrap();
    }

    #[test]
    fn star_and_path_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let star = random_tree_edges(TreeTopology::Star, 10, &mut rng);
        assert!(star.iter().all(|&(u, _)| u == VertexId::new(0)));
        let path = random_tree_edges(TreeTopology::Path, 10, &mut rng);
        assert!(path
            .iter()
            .enumerate()
            .all(|(i, &(u, v))| u.index() == i && v.index() == i + 1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TreeWorkload {
            seed: 1,
            ..TreeWorkload::default()
        }
        .build()
        .unwrap();
        let b = TreeWorkload {
            seed: 2,
            ..TreeWorkload::default()
        }
        .build()
        .unwrap();
        let same = a
            .demands()
            .iter()
            .zip(b.demands())
            .all(|(x, y)| x.u == y.u && x.v == y.v && x.profit == y.profit);
        assert!(!same, "different seeds should produce different demands");
    }
}
