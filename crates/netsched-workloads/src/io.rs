//! JSON serialization of problems, workloads and experiment results.

use netsched_graph::{LineProblem, TreeProblem};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

/// Serializes any serializable value to pretty-printed JSON.
pub fn to_json_string<T: Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string_pretty(value).map_err(|e| e.to_string())
}

/// Deserializes a value from JSON.
pub fn from_json_str<T: DeserializeOwned>(json: &str) -> Result<T, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Writes a serializable value to a JSON file.
pub fn write_json<T: Serialize, P: AsRef<Path>>(path: P, value: &T) -> Result<(), String> {
    let json = to_json_string(value)?;
    std::fs::write(path, json).map_err(|e| e.to_string())
}

/// Reads a value from a JSON file.
pub fn read_json<T: DeserializeOwned, P: AsRef<Path>>(path: P) -> Result<T, String> {
    let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_json_str(&data)
}

/// Round-trips a tree problem through JSON, rebuilding the internal indices
/// that are skipped during serialization.
pub fn tree_problem_from_json(json: &str) -> Result<TreeProblem, String> {
    let p: TreeProblem = from_json_str(json)?;
    // TreeNetwork's LCA index is #[serde(skip)]; the accessors rebuild it on
    // demand only through `ensure_index`, so re-create the problem from its
    // parts to guarantee queryability.
    let mut rebuilt = TreeProblem::new(p.num_vertices());
    for t in 0..p.num_networks() {
        let net = p.network(netsched_graph::NetworkId::new(t));
        let edges = net.edges().map(|(_, uv)| uv).collect();
        let id = rebuilt.add_network(edges).map_err(|e| e.to_string())?;
        for (e, &cap) in p.capacities(netsched_graph::NetworkId::new(t)).iter().enumerate() {
            if (cap - 1.0).abs() > f64::EPSILON {
                rebuilt.set_capacity(id, e, cap).map_err(|e| e.to_string())?;
            }
        }
    }
    for d in p.demands() {
        rebuilt
            .add_demand(d.u, d.v, d.profit, d.height, p.access(d.id).to_vec())
            .map_err(|e| e.to_string())?;
    }
    Ok(rebuilt)
}

/// Round-trips a line problem through JSON.
pub fn line_problem_from_json(json: &str) -> Result<LineProblem, String> {
    from_json_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_gen::LineWorkload;
    use crate::tree_gen::TreeWorkload;

    #[test]
    fn tree_problem_json_roundtrip() {
        let p = TreeWorkload {
            vertices: 20,
            networks: 2,
            demands: 10,
            ..TreeWorkload::default()
        }
        .build()
        .unwrap();
        let json = to_json_string(&p).unwrap();
        let q = tree_problem_from_json(&json).unwrap();
        assert_eq!(p.num_demands(), q.num_demands());
        assert_eq!(p.num_networks(), q.num_networks());
        // The rebuilt problem supports path queries (indices rebuilt).
        let u = q.universe();
        assert_eq!(u.num_instances(), p.universe().num_instances());
    }

    #[test]
    fn line_problem_json_roundtrip() {
        let p = LineWorkload::default().build().unwrap();
        let json = to_json_string(&p).unwrap();
        let q = line_problem_from_json(&json).unwrap();
        assert_eq!(p.num_demands(), q.num_demands());
        assert_eq!(p.universe().num_instances(), q.universe().num_instances());
    }

    #[test]
    fn workload_descriptions_roundtrip() {
        let w = TreeWorkload::default();
        let json = to_json_string(&w).unwrap();
        let back: TreeWorkload = from_json_str(&json).unwrap();
        assert_eq!(w, back);
        let w = LineWorkload::default();
        let json = to_json_string(&w).unwrap();
        let back: LineWorkload = from_json_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn file_io_roundtrip() {
        let dir = std::env::temp_dir().join("netsched-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.json");
        let w = LineWorkload::default();
        write_json(&path, &w).unwrap();
        let back: LineWorkload = read_json(&path).unwrap();
        assert_eq!(w, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(from_json_str::<LineWorkload>("{not json").is_err());
        assert!(read_json::<LineWorkload, _>("/nonexistent/netsched.json").is_err());
    }
}
