//! JSON serialization of problems, workloads and scenarios.
//!
//! Built on the hand-rolled [`crate::json`] layer (no external
//! dependencies). Problems serialize through their public constructor API
//! (edges, capacities, demands), so a deserialized [`TreeProblem`] or
//! [`LineProblem`] is always fully indexed and queryable.

use crate::demand_gen::{HeightDistribution, ProfitDistribution};
use crate::dynamic::ChurnSpec;
use crate::json::{FromJson, JsonValue, ToJson};
use crate::line_gen::LineWorkload;
use crate::scenarios::Scenario;
use crate::tree_gen::{TreeTopology, TreeWorkload};
use netsched_graph::{LineProblem, NetworkId, TreeProblem, VertexId};
use std::path::Path;

/// Serializes any [`ToJson`] value to pretty-printed JSON.
pub fn to_json_string<T: ToJson>(value: &T) -> Result<String, String> {
    Ok(value.to_json().render())
}

/// Deserializes a [`FromJson`] value from JSON text.
pub fn from_json_str<T: FromJson>(json: &str) -> Result<T, String> {
    T::from_json(&JsonValue::parse(json)?)
}

/// Writes a serializable value to a JSON file.
pub fn write_json<T: ToJson, P: AsRef<Path>>(path: P, value: &T) -> Result<(), String> {
    let json = to_json_string(value)?;
    std::fs::write(path, json).map_err(|e| e.to_string())
}

/// Reads a value from a JSON file.
pub fn read_json<T: FromJson, P: AsRef<Path>>(path: P) -> Result<T, String> {
    let data = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_json_str(&data)
}

/// Parses a tree problem from JSON (the problem is rebuilt through its
/// constructor API, so all internal indices are ready for queries).
pub fn tree_problem_from_json(json: &str) -> Result<TreeProblem, String> {
    from_json_str(json)
}

/// Parses a line problem from JSON.
pub fn line_problem_from_json(json: &str) -> Result<LineProblem, String> {
    from_json_str(json)
}

fn access_to_json(access: &[NetworkId]) -> JsonValue {
    JsonValue::Array(access.iter().map(|t| JsonValue::int(t.index())).collect())
}

fn access_from_json(value: &JsonValue) -> Result<Vec<NetworkId>, String> {
    value
        .as_array()?
        .iter()
        .map(|t| Ok(NetworkId::new(t.as_usize()?)))
        .collect()
}

impl ToJson for TreeProblem {
    fn to_json(&self) -> JsonValue {
        let networks: Vec<JsonValue> = (0..self.num_networks())
            .map(|t| {
                let id = NetworkId::new(t);
                let edges: Vec<JsonValue> = self
                    .network(id)
                    .edges()
                    .map(|(_, (u, v))| {
                        JsonValue::Array(vec![JsonValue::int(u.index()), JsonValue::int(v.index())])
                    })
                    .collect();
                let capacities: Vec<JsonValue> = self
                    .capacities(id)
                    .iter()
                    .map(|&c| JsonValue::num(c))
                    .collect();
                JsonValue::object(vec![
                    ("edges", JsonValue::Array(edges)),
                    ("capacities", JsonValue::Array(capacities)),
                ])
            })
            .collect();
        let demands: Vec<JsonValue> = self
            .demands()
            .iter()
            .map(|d| {
                JsonValue::object(vec![
                    ("u", JsonValue::int(d.u.index())),
                    ("v", JsonValue::int(d.v.index())),
                    ("profit", JsonValue::num(d.profit)),
                    ("height", JsonValue::num(d.height)),
                    ("access", access_to_json(self.access(d.id))),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("vertices", JsonValue::int(self.num_vertices())),
            ("networks", JsonValue::Array(networks)),
            ("demands", JsonValue::Array(demands)),
        ])
    }
}

impl FromJson for TreeProblem {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let vertices = value.field("vertices")?.as_usize()?;
        let mut problem = TreeProblem::new(vertices);
        for network in value.field("networks")?.as_array()? {
            let edges: Vec<(VertexId, VertexId)> = network
                .field("edges")?
                .as_array()?
                .iter()
                .map(|edge| {
                    let pair = edge.as_array()?;
                    if pair.len() != 2 {
                        return Err("edge must be a [u, v] pair".to_string());
                    }
                    Ok((
                        VertexId::new(pair[0].as_usize()?),
                        VertexId::new(pair[1].as_usize()?),
                    ))
                })
                .collect::<Result<_, String>>()?;
            let id = problem
                .add_network(edges.clone())
                .map_err(|e| e.to_string())?;
            // The file's capacities array is positional *in file edge
            // order*, but `add_network` canonicalizes edge ids (HLD order),
            // so each capacity must be resolved through its edge's
            // end-points — never through the positional index.
            let capacities = network.field("capacities")?.as_array()?;
            if capacities.len() != edges.len() {
                return Err(format!(
                    "network {id}: {} capacities for {} edges",
                    capacities.len(),
                    edges.len()
                ));
            }
            for (&(u, v), cap) in edges.iter().zip(capacities) {
                let cap = cap.as_f64()?;
                if (cap - 1.0).abs() > f64::EPSILON {
                    problem
                        .set_capacity_between(id, u, v, cap)
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        for demand in value.field("demands")?.as_array()? {
            problem
                .add_demand(
                    VertexId::new(demand.field("u")?.as_usize()?),
                    VertexId::new(demand.field("v")?.as_usize()?),
                    demand.field("profit")?.as_f64()?,
                    demand.field("height")?.as_f64()?,
                    access_from_json(demand.field("access")?)?,
                )
                .map_err(|e| e.to_string())?;
        }
        Ok(problem)
    }
}

impl ToJson for LineProblem {
    fn to_json(&self) -> JsonValue {
        let demands: Vec<JsonValue> = self
            .demands()
            .iter()
            .map(|d| {
                JsonValue::object(vec![
                    ("release", JsonValue::int(d.release as usize)),
                    ("deadline", JsonValue::int(d.deadline as usize)),
                    ("processing", JsonValue::int(d.processing as usize)),
                    ("profit", JsonValue::num(d.profit)),
                    ("height", JsonValue::num(d.height)),
                    ("access", access_to_json(self.access(d.id))),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("timeslots", JsonValue::int(self.timeslots())),
            ("resources", JsonValue::int(self.num_resources())),
            ("demands", JsonValue::Array(demands)),
        ])
    }
}

impl FromJson for LineProblem {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let timeslots = value.field("timeslots")?.as_usize()?;
        let resources = value.field("resources")?.as_usize()?;
        let mut problem = LineProblem::new(timeslots, resources);
        for demand in value.field("demands")?.as_array()? {
            problem
                .add_demand(
                    demand.field("release")?.as_u32()?,
                    demand.field("deadline")?.as_u32()?,
                    demand.field("processing")?.as_u32()?,
                    demand.field("profit")?.as_f64()?,
                    demand.field("height")?.as_f64()?,
                    access_from_json(demand.field("access")?)?,
                )
                .map_err(|e| e.to_string())?;
        }
        Ok(problem)
    }
}

impl ToJson for TreeTopology {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.label().to_string())
    }
}

impl FromJson for TreeTopology {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let label = value.as_str()?;
        TreeTopology::all()
            .into_iter()
            .find(|t| t.label() == label)
            .ok_or_else(|| format!("unknown tree topology `{label}`"))
    }
}

impl ToJson for ProfitDistribution {
    fn to_json(&self) -> JsonValue {
        match *self {
            ProfitDistribution::Constant(value) => JsonValue::object(vec![
                ("kind", JsonValue::String("constant".to_string())),
                ("value", JsonValue::num(value)),
            ]),
            ProfitDistribution::Uniform { min, max } => JsonValue::object(vec![
                ("kind", JsonValue::String("uniform".to_string())),
                ("min", JsonValue::num(min)),
                ("max", JsonValue::num(max)),
            ]),
            ProfitDistribution::PowerOfTwo { exponents } => JsonValue::object(vec![
                ("kind", JsonValue::String("power_of_two".to_string())),
                ("exponents", JsonValue::int(exponents as usize)),
            ]),
        }
    }
}

impl FromJson for ProfitDistribution {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        match value.field("kind")?.as_str()? {
            "constant" => Ok(ProfitDistribution::Constant(
                value.field("value")?.as_f64()?,
            )),
            "uniform" => Ok(ProfitDistribution::Uniform {
                min: value.field("min")?.as_f64()?,
                max: value.field("max")?.as_f64()?,
            }),
            "power_of_two" => Ok(ProfitDistribution::PowerOfTwo {
                exponents: value.field("exponents")?.as_u32()?,
            }),
            other => Err(format!("unknown profit distribution `{other}`")),
        }
    }
}

impl ToJson for HeightDistribution {
    fn to_json(&self) -> JsonValue {
        match *self {
            HeightDistribution::Unit => {
                JsonValue::object(vec![("kind", JsonValue::String("unit".to_string()))])
            }
            HeightDistribution::Uniform { min, max } => JsonValue::object(vec![
                ("kind", JsonValue::String("uniform".to_string())),
                ("min", JsonValue::num(min)),
                ("max", JsonValue::num(max)),
            ]),
            HeightDistribution::Narrow { min } => JsonValue::object(vec![
                ("kind", JsonValue::String("narrow".to_string())),
                ("min", JsonValue::num(min)),
            ]),
            HeightDistribution::Mixed {
                wide_fraction,
                min_narrow,
            } => JsonValue::object(vec![
                ("kind", JsonValue::String("mixed".to_string())),
                ("wide_fraction", JsonValue::num(wide_fraction)),
                ("min_narrow", JsonValue::num(min_narrow)),
            ]),
        }
    }
}

impl FromJson for HeightDistribution {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        match value.field("kind")?.as_str()? {
            "unit" => Ok(HeightDistribution::Unit),
            "uniform" => Ok(HeightDistribution::Uniform {
                min: value.field("min")?.as_f64()?,
                max: value.field("max")?.as_f64()?,
            }),
            "narrow" => Ok(HeightDistribution::Narrow {
                min: value.field("min")?.as_f64()?,
            }),
            "mixed" => Ok(HeightDistribution::Mixed {
                wide_fraction: value.field("wide_fraction")?.as_f64()?,
                min_narrow: value.field("min_narrow")?.as_f64()?,
            }),
            other => Err(format!("unknown height distribution `{other}`")),
        }
    }
}

/// Reads the optional `access_skew` field (absent in pre-skew files).
fn optional_skew(value: &JsonValue) -> Result<f64, String> {
    match value.field("access_skew") {
        Ok(v) => v.as_f64(),
        Err(_) => Ok(0.0),
    }
}

impl ToJson for TreeWorkload {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("vertices", JsonValue::int(self.vertices)),
            ("networks", JsonValue::int(self.networks)),
            ("demands", JsonValue::int(self.demands)),
            ("topology", self.topology.to_json()),
            (
                "access_probability",
                JsonValue::num(self.access_probability),
            ),
            ("access_skew", JsonValue::num(self.access_skew)),
            ("profits", self.profits.to_json()),
            ("heights", self.heights.to_json()),
            ("seed", JsonValue::u64_value(self.seed)),
        ])
    }
}

impl FromJson for TreeWorkload {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        Ok(TreeWorkload {
            vertices: value.field("vertices")?.as_usize()?,
            networks: value.field("networks")?.as_usize()?,
            demands: value.field("demands")?.as_usize()?,
            topology: TreeTopology::from_json(value.field("topology")?)?,
            access_probability: value.field("access_probability")?.as_f64()?,
            access_skew: optional_skew(value)?,
            profits: ProfitDistribution::from_json(value.field("profits")?)?,
            heights: HeightDistribution::from_json(value.field("heights")?)?,
            seed: value.field("seed")?.as_u64()?,
        })
    }
}

impl ToJson for LineWorkload {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("timeslots", JsonValue::int(self.timeslots as usize)),
            ("resources", JsonValue::int(self.resources)),
            ("demands", JsonValue::int(self.demands)),
            ("min_length", JsonValue::int(self.min_length as usize)),
            ("max_length", JsonValue::int(self.max_length as usize)),
            ("max_slack", JsonValue::int(self.max_slack as usize)),
            (
                "access_probability",
                JsonValue::num(self.access_probability),
            ),
            ("access_skew", JsonValue::num(self.access_skew)),
            ("profits", self.profits.to_json()),
            ("heights", self.heights.to_json()),
            ("seed", JsonValue::u64_value(self.seed)),
        ])
    }
}

impl FromJson for LineWorkload {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        Ok(LineWorkload {
            timeslots: value.field("timeslots")?.as_u32()?,
            resources: value.field("resources")?.as_usize()?,
            demands: value.field("demands")?.as_usize()?,
            min_length: value.field("min_length")?.as_u32()?,
            max_length: value.field("max_length")?.as_u32()?,
            max_slack: value.field("max_slack")?.as_u32()?,
            access_probability: value.field("access_probability")?.as_f64()?,
            access_skew: optional_skew(value)?,
            profits: ProfitDistribution::from_json(value.field("profits")?)?,
            heights: HeightDistribution::from_json(value.field("heights")?)?,
            seed: value.field("seed")?.as_u64()?,
        })
    }
}

impl ToJson for ChurnSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("epochs", JsonValue::int(self.epochs)),
            ("churn", JsonValue::num(self.churn)),
            ("focus", JsonValue::int(self.focus)),
            ("seed", JsonValue::u64_value(self.seed)),
        ])
    }
}

impl FromJson for ChurnSpec {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        Ok(ChurnSpec {
            epochs: value.field("epochs")?.as_usize()?,
            churn: value.field("churn")?.as_f64()?,
            focus: value.field("focus")?.as_usize()?,
            seed: value.field("seed")?.as_u64()?,
        })
    }
}

/// Reads the optional `churn` field (absent in pre-dynamic scenario files
/// and for static scenarios).
fn optional_churn(value: &JsonValue) -> Result<Option<ChurnSpec>, String> {
    match value.field("churn") {
        Ok(v) => Ok(Some(ChurnSpec::from_json(v)?)),
        Err(_) => Ok(None),
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> JsonValue {
        let (kind, name, description, workload, churn) = match self {
            Scenario::Tree {
                name,
                description,
                workload,
                churn,
            } => ("tree", name, description, workload.to_json(), churn),
            Scenario::Line {
                name,
                description,
                workload,
                churn,
            } => ("line", name, description, workload.to_json(), churn),
        };
        let mut fields = vec![
            ("kind", JsonValue::String(kind.to_string())),
            ("name", JsonValue::String(name.clone())),
            ("description", JsonValue::String(description.clone())),
            ("workload", workload),
        ];
        if let Some(churn) = churn {
            fields.push(("churn", churn.to_json()));
        }
        JsonValue::object(fields)
    }
}

impl FromJson for Scenario {
    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let name = value.field("name")?.as_str()?.to_string();
        let description = value.field("description")?.as_str()?.to_string();
        let churn = optional_churn(value)?;
        match value.field("kind")?.as_str()? {
            "tree" => Ok(Scenario::Tree {
                name,
                description,
                workload: TreeWorkload::from_json(value.field("workload")?)?,
                churn,
            }),
            "line" => Ok(Scenario::Line {
                name,
                description,
                workload: LineWorkload::from_json(value.field("workload")?)?,
                churn,
            }),
            other => Err(format!("unknown scenario kind `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::named_scenarios;

    #[test]
    fn tree_problem_json_roundtrip() {
        let p = TreeWorkload {
            vertices: 20,
            networks: 2,
            demands: 10,
            ..TreeWorkload::default()
        }
        .build()
        .unwrap();
        let json = to_json_string(&p).unwrap();
        let q = tree_problem_from_json(&json).unwrap();
        assert_eq!(p.num_demands(), q.num_demands());
        assert_eq!(p.num_networks(), q.num_networks());
        // The rebuilt problem supports path queries (indices rebuilt).
        let u = q.universe();
        assert_eq!(u.num_instances(), p.universe().num_instances());
    }

    #[test]
    fn capacities_survive_the_roundtrip() {
        let mut p = TreeWorkload {
            vertices: 12,
            networks: 1,
            demands: 6,
            ..TreeWorkload::default()
        }
        .build()
        .unwrap();
        p.set_capacity(NetworkId::new(0), 3, 2.5).unwrap();
        let q = tree_problem_from_json(&to_json_string(&p).unwrap()).unwrap();
        assert_eq!(q.capacities(NetworkId::new(0))[3], 2.5);
        assert_eq!(q.capacities(NetworkId::new(0))[0], 1.0);
    }

    #[test]
    fn capacities_follow_physical_links_for_externally_ordered_edges() {
        // Hand-authored file whose edge list is NOT in canonical HLD order
        // (the light leaf edge is listed first): the loader must attach
        // each positional capacity to the link named by its end-points, not
        // to whatever edge ends up at that index after canonicalization.
        let json = r#"{
            "vertices": 5,
            "networks": [{
                "edges": [[0, 4], [0, 1], [1, 2], [2, 3]],
                "capacities": [7.5, 1.0, 1.0, 3.0]
            }],
            "demands": [
                {"u": 0, "v": 4, "profit": 1.0, "height": 1.0, "access": [0]}
            ]
        }"#;
        let p = tree_problem_from_json(json).unwrap();
        let network = p.network(NetworkId::new(0));
        for (e, (u, v)) in network.edges() {
            let expected = match (u.index().min(v.index()), u.index().max(v.index())) {
                (0, 4) => 7.5,
                (2, 3) => 3.0,
                _ => 1.0,
            };
            assert_eq!(
                p.capacities(NetworkId::new(0))[e.index()],
                expected,
                "capacity of link {u}-{v}"
            );
        }
        // A mismatched capacities array is rejected, not silently padded.
        let bad = json.replace("[7.5, 1.0, 1.0, 3.0]", "[7.5, 1.0]");
        assert!(tree_problem_from_json(&bad).is_err());
    }

    #[test]
    fn line_problem_json_roundtrip() {
        let p = LineWorkload::default().build().unwrap();
        let json = to_json_string(&p).unwrap();
        let q = line_problem_from_json(&json).unwrap();
        assert_eq!(p.num_demands(), q.num_demands());
        assert_eq!(p.universe().num_instances(), q.universe().num_instances());
    }

    #[test]
    fn workload_descriptions_roundtrip() {
        let w = TreeWorkload::default();
        let json = to_json_string(&w).unwrap();
        let back: TreeWorkload = from_json_str(&json).unwrap();
        assert_eq!(w, back);
        let w = LineWorkload::default();
        let json = to_json_string(&w).unwrap();
        let back: LineWorkload = from_json_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn every_named_scenario_roundtrips() {
        for scenario in named_scenarios() {
            let json = to_json_string(&scenario).unwrap();
            let back: Scenario = from_json_str(&json).unwrap();
            assert_eq!(scenario.name(), back.name());
            assert_eq!(scenario.description(), back.description());
            assert_eq!(scenario.churn(), back.churn(), "{}", scenario.name());
        }
    }

    #[test]
    fn churn_scenarios_roundtrip_their_spec() {
        let churn = named_scenarios()
            .into_iter()
            .find(|s| s.name() == "churn-line")
            .expect("churn-line registered");
        assert!(churn.churn().is_some());
        let back: Scenario = from_json_str(&to_json_string(&churn).unwrap()).unwrap();
        let spec = back.churn().expect("churn survives the roundtrip");
        assert_eq!(spec, churn.churn().unwrap());
    }

    #[test]
    fn pre_dynamic_scenario_files_parse_with_no_churn() {
        // A scenario file written before the `churn` field existed must
        // still load (backwards-compatible optional field).
        let json = r#"{
            "kind": "line",
            "name": "old-scenario",
            "description": "a static scenario from an old file",
            "workload": {
                "timeslots": 32, "resources": 2, "demands": 5,
                "min_length": 1, "max_length": 4, "max_slack": 2,
                "access_probability": 0.5,
                "profits": {"kind": "constant", "value": 1.0},
                "heights": {"kind": "unit"},
                "seed": 3
            }
        }"#;
        let back: Scenario = from_json_str(json).unwrap();
        assert!(back.churn().is_none());
        assert_eq!(back.name(), "old-scenario");
    }

    #[test]
    fn seeds_beyond_2_pow_53_roundtrip_exactly() {
        let w = TreeWorkload {
            seed: (1 << 60) + 1,
            ..TreeWorkload::default()
        };
        let back: TreeWorkload = from_json_str(&to_json_string(&w).unwrap()).unwrap();
        assert_eq!(back.seed, (1 << 60) + 1);
        let w = LineWorkload {
            seed: u64::MAX,
            ..LineWorkload::default()
        };
        let back: LineWorkload = from_json_str(&to_json_string(&w).unwrap()).unwrap();
        assert_eq!(back.seed, u64::MAX);
    }

    #[test]
    fn file_io_roundtrip() {
        let dir = std::env::temp_dir().join("netsched-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.json");
        let w = LineWorkload::default();
        write_json(&path, &w).unwrap();
        let back: LineWorkload = read_json(&path).unwrap();
        assert_eq!(w, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(from_json_str::<LineWorkload>("{not json").is_err());
        assert!(read_json::<LineWorkload, _>("/nonexistent/netsched.json").is_err());
    }
}
