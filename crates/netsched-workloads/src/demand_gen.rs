//! Profit and height distributions for synthetic demands.

use rand::rngs::StdRng;
use rand::Rng;

/// How demand profits are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfitDistribution {
    /// Every demand has the same profit.
    Constant(f64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest profit.
        min: f64,
        /// Largest profit.
        max: f64,
    },
    /// Powers of two `2^0 .. 2^exponents`, uniformly chosen — used to stress
    /// the `log(p_max/p_min)` term of the round-complexity bounds.
    PowerOfTwo {
        /// Number of distinct exponents.
        exponents: u32,
    },
}

/// How demand heights are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeightDistribution {
    /// Unit height (the Section 5 setting).
    Unit,
    /// Uniform in `[min, max] ⊆ (0, 1]`.
    Uniform {
        /// Smallest height.
        min: f64,
        /// Largest height.
        max: f64,
    },
    /// Narrow-only heights: uniform in `[min, 1/2]`.
    Narrow {
        /// Smallest height.
        min: f64,
    },
    /// A mix: with probability `wide_fraction` the height is uniform in
    /// `(1/2, 1]`, otherwise uniform in `[min_narrow, 1/2]`.
    Mixed {
        /// Fraction of wide demands.
        wide_fraction: f64,
        /// Smallest narrow height.
        min_narrow: f64,
    },
}

/// A sampled (profit, height) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSpec {
    /// Sampled profit.
    pub profit: f64,
    /// Sampled height.
    pub height: f64,
}

impl DemandSpec {
    /// Samples a (profit, height) pair from the given distributions.
    pub fn sample(
        profits: &ProfitDistribution,
        heights: &HeightDistribution,
        rng: &mut StdRng,
    ) -> Self {
        let profit = match *profits {
            ProfitDistribution::Constant(p) => p,
            ProfitDistribution::Uniform { min, max } => {
                if (max - min).abs() < f64::EPSILON {
                    min
                } else {
                    rng.gen_range(min..max)
                }
            }
            ProfitDistribution::PowerOfTwo { exponents } => {
                let e = rng.gen_range(0..=exponents);
                (2.0f64).powi(e as i32)
            }
        };
        let height = match *heights {
            HeightDistribution::Unit => 1.0,
            HeightDistribution::Uniform { min, max } => {
                if (max - min).abs() < f64::EPSILON {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
            HeightDistribution::Narrow { min } => rng.gen_range(min..=0.5),
            HeightDistribution::Mixed {
                wide_fraction,
                min_narrow,
            } => {
                if rng.gen_bool(wide_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(0.5f64.next_up()..=1.0)
                } else {
                    rng.gen_range(min_narrow..=0.5)
                }
            }
        };
        Self { profit, height }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = DemandSpec::sample(
                &ProfitDistribution::Uniform { min: 1.0, max: 8.0 },
                &HeightDistribution::Uniform { min: 0.1, max: 0.9 },
                &mut rng,
            );
            assert!(s.profit >= 1.0 && s.profit <= 8.0);
            assert!(s.height >= 0.1 && s.height <= 0.9);
        }
    }

    #[test]
    fn power_of_two_profits_are_powers() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = DemandSpec::sample(
                &ProfitDistribution::PowerOfTwo { exponents: 6 },
                &HeightDistribution::Unit,
                &mut rng,
            );
            let l = s.profit.log2();
            assert!((l - l.round()).abs() < 1e-12);
            assert!(s.profit >= 1.0 && s.profit <= 64.0);
            assert_eq!(s.height, 1.0);
        }
    }

    #[test]
    fn narrow_and_mixed_distributions_respect_the_half_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_wide = false;
        let mut saw_narrow = false;
        for _ in 0..300 {
            let narrow = DemandSpec::sample(
                &ProfitDistribution::Constant(1.0),
                &HeightDistribution::Narrow { min: 0.05 },
                &mut rng,
            );
            assert!(narrow.height <= 0.5);
            let mixed = DemandSpec::sample(
                &ProfitDistribution::Constant(1.0),
                &HeightDistribution::Mixed {
                    wide_fraction: 0.5,
                    min_narrow: 0.05,
                },
                &mut rng,
            );
            if mixed.height > 0.5 {
                saw_wide = true;
            } else {
                saw_narrow = true;
            }
            assert!(mixed.height > 0.0 && mixed.height <= 1.0);
        }
        assert!(saw_wide && saw_narrow);
    }

    #[test]
    fn constant_distributions_are_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = DemandSpec::sample(
            &ProfitDistribution::Constant(5.0),
            &HeightDistribution::Unit,
            &mut rng,
        );
        assert_eq!(s.profit, 5.0);
        assert_eq!(s.height, 1.0);
        let s = DemandSpec::sample(
            &ProfitDistribution::Uniform { min: 2.0, max: 2.0 },
            &HeightDistribution::Uniform { min: 0.3, max: 0.3 },
            &mut rng,
        );
        assert_eq!(s.profit, 2.0);
        assert_eq!(s.height, 0.3);
    }
}
