//! Offline drop-in shim for the subset of the `criterion` API used by the
//! workspace benches: [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! with `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are real wall-clock timings (median over the configured
//! number of samples, with automatic per-sample iteration calibration) but
//! there is no statistical analysis, plotting or state persistence: the
//! build environment has no crates.io access, so this shim keeps
//! `cargo bench` functional and self-contained.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name,
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_benchmark("", &id.into().label(), 20, &mut f);
    }
}

/// A group of benchmarks sharing a name and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_benchmark(&self.group, &id.into().label(), self.sample_size, &mut f);
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        run_benchmark(
            &self.group,
            &id.into().label(),
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => format!("{}/{}", self.function, p),
            Some(p) => p.clone(),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] performs the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times the closure, calibrating iterations per sample so that each
    /// sample runs for roughly [`TARGET_SAMPLE`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: double the iteration count until a sample is long
        // enough to time reliably.
        if self.iters_per_sample == 0 {
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                let elapsed = start.elapsed();
                if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                    self.iters_per_sample = iters;
                    break;
                }
                iters *= 2;
            }
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark(group: &str, label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_per_sample: 0,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.samples.is_empty() {
        println!("  {full:<56} (no measurement)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "  {full:<56} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples x {} iters)",
        median,
        min,
        max,
        bencher.samples.len(),
        bencher.iters_per_sample
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", "p").label(), "f/p");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }
}
