//! Offline drop-in shim for the subset of the `proptest` API used by the
//! workspace tests: the [`proptest!`] macro with a `#![proptest_config]`
//! header, `arg in strategy` bindings over [`any`] and integer ranges, and
//! the [`prop_assert!`] / [`prop_assert_eq!`] assertions.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! database; cases are generated from a deterministic per-test stream, so a
//! failure always reproduces with plain `cargo test`. The build environment
//! has no crates.io access, which is why this shim exists.

/// Everything the tests import.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Test-runner configuration; only the number of cases is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test random stream (SplitMix64 over an FNV-1a hash of
/// the test path and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case number `case` of the named test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator, as bound by `arg in strategy` inside [`proptest!`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i32, i64);

/// Runs every property as a normal `#[test]`, iterating the configured
/// number of deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(n in 3usize..9, m in 1u32..=4) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..=4).contains(&m));
        }

        #[test]
        fn any_values_vary(seed in any::<u64>(), flag in any::<bool>()) {
            // Smoke: the bindings exist and are usable.
            let _ = seed.wrapping_add(flag as u64);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
