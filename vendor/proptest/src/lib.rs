//! Offline drop-in shim for the subset of the `proptest` API used by the
//! workspace tests: the [`proptest!`] macro with a `#![proptest_config]`
//! header, `arg in strategy` bindings over [`any`] and integer ranges, the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertions, and **greedy
//! shrinking** through [`Strategy::shrink`].
//!
//! # Shrinking
//!
//! When a case fails, the runner greedily minimizes it: every bound
//! argument is walked through its strategy's [`Strategy::shrink`]
//! candidates (others held fixed), keeping any candidate that still fails,
//! until no candidate of any argument fails — a local minimum. The
//! minimal input is printed (via `Debug`) and the case re-runs unprotected
//! so the original assertion message surfaces. Bound values must therefore
//! be `Clone + Debug`. Strategies default to no candidates (no shrinking);
//! integer ranges bisect toward their lower bound, and custom strategies
//! (e.g. the workspace's event-trace strategy) implement domain-aware
//! shrinking. Shrink attempts run with the panic hook suppressed so the
//! minimization loop does not spam the log.
//!
//! Unlike upstream proptest there is no persisted failure database; cases
//! are generated from a deterministic per-test stream, so a failure always
//! reproduces with plain `cargo test`. The build environment has no
//! crates.io access, which is why this shim exists.

/// Everything the tests import.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Test-runner configuration; only the number of cases is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test random stream (SplitMix64 over an FNV-1a hash of
/// the test path and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for case number `case` of the named test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator, as bound by `arg in strategy` inside [`proptest!`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates to try when `value` made a case fail, most
    /// aggressive first. The runner keeps any candidate that still fails
    /// and re-shrinks from it; an empty list (the default) means the value
    /// is already minimal.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Shrink candidates for a failing value (see [`Strategy::shrink`]).
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Runs `f` with the global panic hook suppressed, returning `true` when
/// it completes without panicking. Used by the shrinking loop so candidate
/// evaluations do not spam the log. The swap is serialized through a
/// process-wide mutex: two tests shrinking concurrently would otherwise
/// race the take/restore and could leave the silent hook installed
/// permanently. (A concurrently failing test in *another* thread is still
/// silenced while a shrink candidate runs — an accepted shim tradeoff.)
#[doc(hidden)]
pub fn run_quiet(f: impl FnOnce()) -> bool {
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = HOOK_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_ok();
    std::panic::set_hook(hook);
    drop(guard);
    ok
}

fn shrink_toward<T>(lo: i128, value: i128, cast: impl Fn(i128) -> T) -> Vec<T> {
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let mid = lo + (value - lo) / 2;
        if mid != lo && mid != value {
            out.push(mid);
        }
        if value - 1 != lo && value - 1 != mid {
            out.push(value - 1);
        }
    }
    out.into_iter().map(cast).collect()
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }

    fn shrink_value(&self) -> Vec<Self> {
        shrink_toward(0, *self as i128, |v| v as u64)
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }

    fn shrink_value(&self) -> Vec<Self> {
        shrink_toward(0, *self as i128, |v| v as u32)
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }

    fn shrink_value(&self) -> Vec<Self> {
        shrink_toward(0, *self as i128, |v| v as usize)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The full-domain strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128, |v| v as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128, |v| v as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i32, i64);

/// Runs every property as a normal `#[test]`, iterating the configured
/// number of deterministic cases; failing cases are greedily shrunk to a
/// minimal failing input before being reported (see the crate docs).
/// Bound values must be `Clone + Debug`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    // Each bound value lives in a shared cell so the
                    // re-run closure always reads the current candidate
                    // while the shrink loop swaps values in and out.
                    $(
                        let $arg = ::std::rc::Rc::new(::std::cell::RefCell::new(
                            $crate::Strategy::sample(&($strat), &mut __rng),
                        ));
                    )*
                    let __run = {
                        $(let $arg = ::std::rc::Rc::clone(&$arg);)*
                        move || {
                            $(let $arg = $arg.borrow().clone();)*
                            $body
                        }
                    };
                    let __passed = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(&__run),
                    )
                    .is_ok();
                    if __passed {
                        continue;
                    }
                    // Greedy minimization: walk each argument's shrink
                    // candidates (others held fixed), keeping any
                    // candidate that still fails, until no argument can
                    // shrink further.
                    let mut __rounds = 0;
                    loop {
                        let mut __changed = false;
                        $(
                            loop {
                                let __value = $arg.borrow().clone();
                                let __candidates =
                                    $crate::Strategy::shrink(&($strat), &__value);
                                let mut __advanced = false;
                                for __candidate in __candidates {
                                    let __backup = $arg.replace(__candidate);
                                    if $crate::run_quiet(&__run) {
                                        let _ = $arg.replace(__backup);
                                    } else {
                                        __advanced = true;
                                        __changed = true;
                                        break;
                                    }
                                }
                                if !__advanced {
                                    break;
                                }
                            }
                        )*
                        __rounds += 1;
                        if !__changed || __rounds >= 64 {
                            break;
                        }
                    }
                    $(
                        eprintln!(
                            "proptest {}: case {__case} failed; minimal {} = {:#?}",
                            stringify!($name),
                            stringify!($arg),
                            $arg.borrow(),
                        );
                    )*
                    // Re-run the minimal case unprotected so the original
                    // assertion panic (with its message) surfaces.
                    __run();
                    unreachable!("shrunk proptest case stopped failing on re-run");
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::run_quiet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(n in 3usize..9, m in 1u32..=4) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..=4).contains(&m));
        }

        #[test]
        fn any_values_vary(seed in any::<u64>(), flag in any::<bool>()) {
            // Smoke: the bindings exist and are usable.
            let _ = seed.wrapping_add(flag as u64);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_shrink_bisects_toward_the_lower_bound() {
        let strat = 3usize..100;
        let candidates = Strategy::shrink(&strat, &80);
        assert_eq!(candidates, vec![3, 41, 79]);
        assert!(Strategy::shrink(&strat, &3).is_empty());
        let incl = 1u32..=8;
        assert_eq!(Strategy::shrink(&incl, &2), vec![1]);
    }

    #[test]
    fn shrinking_finds_the_minimal_failing_input() {
        // A property that fails for every n ≥ 10: the greedy shrink must
        // land exactly on 10 (the local minimum of the range strategy).
        use std::cell::RefCell;
        use std::rc::Rc;
        let strat = 0usize..1000;
        let value = Rc::new(RefCell::new(977usize));
        let run = {
            let value = Rc::clone(&value);
            move || assert!(*value.borrow() < 10)
        };
        assert!(!run_quiet(&run));
        loop {
            let current = *value.borrow();
            let mut advanced = false;
            for candidate in Strategy::shrink(&strat, &current) {
                let backup = value.replace(candidate);
                if run_quiet(&run) {
                    let _ = value.replace(backup);
                } else {
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        assert_eq!(*value.borrow(), 10);
    }
}
