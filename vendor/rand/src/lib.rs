//! Offline drop-in shim for the subset of the `rand` 0.8 API this workspace
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`] and [`Rng::gen`], with [`rngs::StdRng`]
//! and [`rngs::SmallRng`] both backed by a deterministic xoshiro256++
//! generator seeded via SplitMix64.
//!
//! The build environment has no access to crates.io, so this crate exists to
//! keep the workspace self-contained. It is *not* the upstream `rand` crate:
//! streams differ from upstream for the same seed, but every generator here
//! is deterministic, seedable and of sufficient statistical quality for the
//! workload generation and randomized algorithms in this repository.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core used by both [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the four state words with SplitMix64, as recommended by the
    /// xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (possible only for adversarial seeds).
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    /// A small, fast generator (same core as [`StdRng`] in this shim).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::new(state))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::new(state ^ 0x5DEE_CE66_D5DE_ECE6))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Uniform value in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // The full domain of the type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let v = lo + (unit_f64(rng) as $t) * (hi - lo);
                if v > hi { hi } else { v }
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }

    /// Uniform value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&f));
            let g = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn full_range_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
