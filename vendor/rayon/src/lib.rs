//! Offline drop-in shim for the subset of the `rayon` API used by the
//! workspace: `par_iter().map(..).collect()` over slices and `Vec`s.
//!
//! Work is genuinely executed in parallel with `std::thread::scope`
//! (contiguous chunks, one OS thread per chunk, order-preserving collect),
//! but there is no work stealing or global pool: the build environment has
//! no crates.io access, so this shim keeps the experiment harness parallel
//! and self-contained.

/// The public traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types whose contents can be iterated in parallel by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, to be executed in parallel on
    /// [`ParMap::collect`].
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], executed on [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let f = &self.f;
        if n == 0 || threads <= 1 {
            return self.items.iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                per_chunk.push(handle.join().expect("parallel map worker panicked"));
            }
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_maps_all() {
        let input: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), input.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn works_on_slices_and_empty_inputs() {
        let slice: &[u32] = &[3, 1, 2];
        let out: Vec<u32> = slice.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let empty: &[u32] = &[];
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
