//! Offline drop-in shim for the subset of the `rayon` API used by the
//! workspace: `par_iter().map(..).collect()` over slices and `Vec`s, and
//! `into_par_iter().map(..).collect()` over index ranges and owned `Vec`s
//! (the shape of the per-shard loops in `netsched-distrib` and
//! `netsched-core`).
//!
//! Work is genuinely executed in parallel with `std::thread::scope`
//! (contiguous chunks, one OS thread per chunk, order-preserving collect),
//! but there is no work stealing or global pool: the build environment has
//! no crates.io access, so this shim keeps the experiment harness parallel
//! and self-contained.
//!
//! The worker count defaults to `std::thread::available_parallelism`
//! (overridable via `RAYON_NUM_THREADS`, as in real rayon) and can be
//! pinned with [`ThreadPoolBuilder::build_global`], mirroring real
//! rayon's global-pool configuration. One deliberate divergence: the shim
//! allows reconfiguring the global worker count (real rayon errors on the
//! second call), which the `shard_scaling` bench uses to sweep thread
//! counts inside one process.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The public traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Globally configured worker count; 0 means "use the machine default".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Configures the shim's global worker count, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build_global`]; the shim
/// never actually fails, the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool could not be configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (machine-sized) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; 0 restores the machine default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike real rayon this may be
    /// called repeatedly; the latest call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

/// The `RAYON_NUM_THREADS` default, parsed once (0 when unset/invalid).
/// Cached so the hot `current_num_threads` path never touches the
/// allocating `std::env` API after the first call.
fn env_threads() -> usize {
    static ENV_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// The worker count parallel iterators currently run with: an explicit
/// [`ThreadPoolBuilder::build_global`] call wins, then the
/// `RAYON_NUM_THREADS` environment variable (mirroring real rayon), then
/// the machine default.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::SeqCst) {
        0 => match env_threads() {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            n => n,
        },
        n => n,
    }
}

/// Effective number of workers for `n` items.
fn effective_threads(n: usize) -> usize {
    current_num_threads().min(n.max(1))
}

/// Types whose contents can be iterated in parallel by shared reference.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Types that can be converted into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Consumes `self` and returns a parallel iterator over its items.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// An owning parallel iterator.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Maps every element through `f`, to be executed in parallel on
    /// [`IntoParMap::collect`].
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`IntoParIter::map`], executed on [`IntoParMap::collect`].
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> IntoParMap<T, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = effective_threads(n);
        let f = &self.f;
        if n == 0 || threads <= 1 {
            return self.items.into_iter().map(f).collect();
        }
        // Split the owned items into contiguous chunks up front so every
        // worker receives owned data; results are re-joined in input order.
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = self.items.into_iter();
        loop {
            let c: Vec<T> = items.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                per_chunk.push(handle.join().expect("parallel map worker panicked"));
            }
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// A borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, to be executed in parallel on
    /// [`ParMap::collect`].
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], executed on [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = effective_threads(n);
        let f = &self.f;
        if n == 0 || threads <= 1 {
            return self.items.iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                per_chunk.push(handle.join().expect("parallel map worker panicked"));
            }
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn preserves_order_and_maps_all() {
        let input: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), input.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn works_on_slices_and_empty_inputs() {
        let slice: &[u32] = &[3, 1, 2];
        let out: Vec<u32> = slice.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let empty: &[u32] = &[];
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn range_into_par_iter_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        let empty: Vec<usize> = (7..7).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn owned_vec_into_par_iter_moves_values_in_order() {
        // Non-Copy payloads exercise the owned-chunk splitting.
        let input: Vec<String> = (0..97).map(|i| format!("item-{i}")).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 97);
        assert_eq!(out[0], "item-0".len());
        assert_eq!(out[96], "item-96".len());
    }

    #[test]
    fn thread_pool_builder_pins_and_restores_the_worker_count() {
        // NB: GLOBAL_THREADS is process-wide; this is the only test in
        // this binary that touches it, and no sibling test asserts on the
        // worker count, so the temporary pin cannot interfere.
        ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 2);
        let out: Vec<usize> = (0..64).into_par_iter().map(|i| i + 1).collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }
}
