//! Offline drop-in shim for the `fxhash` crate: the Firefox/rustc
//! multiply-rotate hash behind [`FxHashMap`] / [`FxHashSet`] aliases.
//!
//! Two reasons to prefer this over `std`'s default SipHash maps:
//!
//! 1. **Determinism** — `std::collections::HashMap` seeds SipHash from the
//!    process RNG, so iteration order differs between runs. `FxHasher` has
//!    no seed: the same keys always produce the same table layout, which
//!    keeps every hash-dependent code path in the workspace reproducible.
//! 2. **Speed** — the workspace keys are small integers and short tuples;
//!    one wrapping multiply per word is substantially cheaper than SipHash.
//!
//! Like the other `vendor/` shims this is not the upstream crate, just an
//! API-compatible implementation of the subset the workspace uses
//! ([`FxHashMap`], [`FxHashSet`], [`FxHasher`], [`FxBuildHasher`], and the
//! `hash32`/`hash64` helpers).

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The 64-bit Fx multiply-rotate constant (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: `hash = (hash.rotl(5) ^ word) * SEED` per
/// input word. Not cryptographic and not DoS-resistant — use only where
/// determinism and speed matter more than adversarial robustness.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing unseeded [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]: deterministic layout, fast on small
/// integer keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a value with [`FxHasher`] to 64 bits.
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Hashes a value with [`FxHasher`] to 32 bits.
pub fn hash32<T: Hash + ?Sized>(value: &T) -> u32 {
    hash64(value) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_eq!(hash64("path"), hash64("path"));
        assert_ne!(hash64(&1u64), hash64(&2u64));
        assert_eq!(hash32(&7usize), hash32(&7usize));
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        set.insert((3, 4));
        assert!(set.contains(&(3, 4)));
        assert!(!set.contains(&(4, 3)));
    }

    #[test]
    fn iteration_order_is_stable_for_identical_inserts() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for k in 0..256 {
                m.insert(k * 977, k);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "unseeded hashing must be reproducible");
    }

    #[test]
    fn uneven_byte_streams_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(a.finish(), c.finish());
    }
}
