//! Dynamic serving: drive the async batch-admission service over a churn
//! trace and watch the per-epoch schedule deltas.
//!
//! Opens a [`ServiceSession`] on the `churn-line` scenario's initial pool,
//! wraps it in the executor-agnostic [`Service`], and replays the
//! scenario's Poisson tenant-replacement trace — submitting each epoch's
//! events as **two concurrent submissions** to show the batch admission:
//! both futures resolve with the *same* epoch delta, because whichever is
//! polled first folds everything queued into one incremental epoch.
//!
//! Run with: `cargo run --release --example dynamic_service`

use netsched::core::AlgorithmConfig;
use netsched::service::{
    block_on, DemandEvent, DemandRequest, DemandTicket, Service, ServiceSession,
};
use netsched::workloads::{
    poisson_arrivals_line, scenario_by_name, ChurnSpec, Scenario, TraceEvent,
};

fn main() {
    let scenario = scenario_by_name("churn-line").expect("churn-line is registered");
    let workload = match &scenario {
        Scenario::Line { workload, .. } => workload.clone(),
        _ => unreachable!("churn-line is a line scenario"),
    };
    let spec = ChurnSpec {
        epochs: 12,
        ..scenario
            .churn()
            .expect("churn-line has a churn profile")
            .clone()
    };
    let trace = poisson_arrivals_line(&workload, &spec);
    let problem = workload.build().expect("workload builds");

    println!("== netsched dynamic serving ==");
    println!(
        "initial pool: {} demands on {} machine timelines   churn {:.0}%/epoch, focus {}",
        problem.num_demands(),
        problem.num_resources(),
        100.0 * spec.churn,
        spec.focus
    );

    let service = Service::new(ServiceSession::for_line(
        &problem,
        AlgorithmConfig::deterministic(0.25),
    ));

    // Epoch 0: solve the initial pool (an empty submission).
    let first = block_on(service.submit(vec![]).expect("empty batch is valid"))
        .expect("initial epoch solves");
    println!(
        "\nepoch {:>2}   scheduled {:>3} demands   profit {:>8.1}   certified OPT ≤ {:>8.1}",
        first.epoch,
        first.admitted.len(),
        first.profit,
        first.certificate.optimum_upper_bound
    );

    // Tickets of every arrival so far, in arrival order (the session seeds
    // tickets 0..m for the initial demands).
    let mut tickets: Vec<DemandTicket> = service.with_session(|s| s.live_tickets());

    for batch in &trace.batches {
        let events: Vec<DemandEvent> = batch
            .iter()
            .map(|event| match event {
                TraceEvent::ArriveLine {
                    release,
                    deadline,
                    processing,
                    profit,
                    height,
                    access,
                } => DemandEvent::Arrive(DemandRequest::Line {
                    release: *release,
                    deadline: *deadline,
                    processing: *processing,
                    profit: *profit,
                    height: *height,
                    access: access.clone(),
                }),
                TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
                TraceEvent::ArriveTree { .. } => unreachable!("line trace"),
            })
            .collect();

        // Two tenants submit concurrently; one epoch admits both.
        let mid = events.len() / 2;
        let (first_half, second_half) = (events[..mid].to_vec(), events[mid..].to_vec());
        let a = service.submit(first_half).expect("validated at submit");
        let b = service.submit(second_half).expect("validated at submit");
        let delta = block_on(a).expect("epoch succeeds");
        let same = block_on(b).expect("epoch succeeds");
        assert_eq!(delta.epoch, same.epoch, "both submissions share the epoch");
        tickets.extend(delta.tickets.iter().copied());

        println!(
            "epoch {:>2}   {:>2} arrivals, {:>2} expiries → +{:<2} admitted, -{:<2} evicted, {:>2} moved   \
             {}/{} shards rebuilt   profit {:>8.1}   ratio ≤ {:.2}",
            delta.epoch,
            delta.stats.arrivals,
            delta.stats.expiries,
            delta.admitted.len(),
            delta.evicted.len(),
            delta.reassigned.len(),
            delta.stats.dirty_shards,
            delta.stats.num_shards,
            delta.profit,
            delta.certificate.optimum_upper_bound / delta.profit.max(1e-9),
        );
    }

    let (live, scheduled, epoch) =
        service.with_session(|s| (s.live_demands(), s.schedule().len(), s.epoch()));
    println!(
        "\nafter {epoch} epochs: {live} live demands, {scheduled} scheduled — every epoch paid \
         only for the shards its batch touched."
    );
}
