//! Bandwidth reservations on parallel links (line networks with windows).
//!
//! Each request asks for a fraction of a link's capacity for a contiguous
//! time segment that must fit inside its [release, deadline] window; the
//! scheduler picks a link, a start time and which requests to admit. This
//! is the Section 7 setting of the paper with arbitrary heights.
//!
//! The example opens one [`Scheduler`] session on the instance and runs the
//! full solver registry as a portfolio — the paper's (23 + ε)-approximation
//! (Theorem 7.2, auto-selected for this mixed-height shape), the
//! Panconesi–Sozio-style baseline it improves on, the greedy heuristics and
//! the exact optimum all share the session's cached universe and
//! decompositions.
//!
//! Run with: `cargo run --example bandwidth_reservation`

use netsched::prelude::*;

fn main() {
    // 36 timeslots, 2 identical links, 22 reservation requests with mixed
    // bandwidth fractions.
    let workload = LineWorkload {
        timeslots: 36,
        resources: 2,
        demands: 22,
        min_length: 2,
        max_length: 10,
        max_slack: 5,
        access_probability: 0.85,
        access_skew: 0.0,
        profits: ProfitDistribution::Uniform {
            min: 1.0,
            max: 20.0,
        },
        heights: HeightDistribution::Mixed {
            wide_fraction: 0.3,
            min_narrow: 0.1,
        },
        seed: 42,
    };
    let problem = workload.build().expect("workload is valid");
    let session = Scheduler::for_line(&problem);

    println!("== bandwidth reservation example ==");
    println!(
        "{} requests, {} links, {} timeslots, {} demand instances",
        problem.num_demands(),
        problem.num_resources(),
        problem.timeslots(),
        session.universe().num_instances()
    );
    println!(
        "auto-selected solver: {} (Theorem 7.2)",
        session.auto_solver().name()
    );

    let config = AlgorithmConfig {
        epsilon: 0.1,
        mis: MisStrategy::Luby { seed: 7 },
        seed: 7,
    };

    // One portfolio call: every registered solver that supports this shape
    // runs on the shared session caches — including Theorem 7.2 and the
    // exact branch-and-bound, so both are read back from the runs below
    // instead of being solved a second time.
    let portfolio = session.portfolio(&netsched::registry(), &config);
    let run_named = |name: &str| {
        portfolio
            .runs
            .iter()
            .find(|r| r.name == name)
            .expect("solver participates in the portfolio")
    };
    let exact = &run_named("exact").solution;

    println!(
        "\n{:<20} {:>10} {:>10} {:>10}",
        "solver", "profit", "rounds", "vs OPT"
    );
    for run in &portfolio.runs {
        println!(
            "{:<20} {:>10.2} {:>10} {:>9.1}%",
            run.name,
            run.solution.profit,
            run.solution.stats.rounds,
            100.0 * run.solution.profit / exact.profit.max(1e-9)
        );
    }
    let ours = &run_named("line-arbitrary").solution;

    println!("\n-- admitted reservations (this paper, Thm 7.2) --");
    for &inst in &ours.selected {
        let d = session.universe().instance(inst);
        let demand = problem.demand(d.demand);
        println!(
            "  request {:>3}: link {}, slots [{:>2}, {:>2}], bandwidth {:.2}, profit {:>5.1}  (window [{}, {}])",
            d.demand.index(),
            d.network.index(),
            d.start.unwrap_or(0),
            d.start.unwrap_or(0) + demand.processing - 1,
            d.height,
            d.profit,
            demand.release,
            demand.deadline
        );
    }

    println!(
        "\ncertificate: OPT <= {:.2}; certified ratio {:.2} (theorem bound {:.1})",
        ours.diagnostics.optimum_upper_bound,
        ours.certified_ratio().unwrap_or(1.0),
        LineArbitrarySolver.guarantee(config.epsilon).unwrap()
    );
    let counts = session.build_counts();
    println!(
        "session caches: universe x{}, wide/narrow split x{} — shared by {} runs",
        counts.universe,
        counts.split,
        portfolio.runs.len()
    );
}
