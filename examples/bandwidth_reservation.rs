//! Bandwidth reservations on parallel links (line networks with windows).
//!
//! Each request asks for a fraction of a link's capacity for a contiguous
//! time segment that must fit inside its [release, deadline] window; the
//! scheduler picks a link, a start time and which requests to admit. This
//! is the Section 7 setting of the paper with arbitrary heights.
//!
//! The example compares:
//!   * the paper's (23 + ε)-approximation (Theorem 7.2),
//!   * the Panconesi–Sozio-style baseline it improves on,
//!   * a profit-greedy heuristic, and
//!   * the exact optimum (branch-and-bound; the instance is kept small).
//!
//! Run with: `cargo run --example bandwidth_reservation`

use netsched::prelude::*;

fn main() {
    // 36 timeslots, 2 identical links, 22 reservation requests with mixed
    // bandwidth fractions.
    let workload = LineWorkload {
        timeslots: 36,
        resources: 2,
        demands: 22,
        min_length: 2,
        max_length: 10,
        max_slack: 5,
        access_probability: 0.85,
        profits: ProfitDistribution::Uniform { min: 1.0, max: 20.0 },
        heights: HeightDistribution::Mixed {
            wide_fraction: 0.3,
            min_narrow: 0.1,
        },
        seed: 42,
    };
    let problem = workload.build().expect("workload is valid");
    let universe = problem.universe();

    println!("== bandwidth reservation example ==");
    println!(
        "{} requests, {} links, {} timeslots, {} demand instances",
        problem.num_demands(),
        problem.num_resources(),
        problem.timeslots(),
        universe.num_instances()
    );

    let config = AlgorithmConfig {
        epsilon: 0.1,
        mis: MisStrategy::Luby { seed: 7 },
        seed: 7,
    };

    let ours = solve_line_arbitrary(&problem, &config);
    ours.verify(&universe).expect("feasible");
    let ps = solve_ps_line_narrow(&problem, &config);
    ps.verify(&universe).expect("feasible");
    let greedy = best_greedy(&universe);
    greedy.verify(&universe).expect("feasible");
    let exact = exact_optimum(&universe);

    println!("\n{:<38} {:>10} {:>10} {:>10}", "algorithm", "profit", "rounds", "vs OPT");
    let row = |name: &str, profit: f64, rounds: u64| {
        println!(
            "{:<38} {:>10.2} {:>10} {:>9.1}%",
            name,
            profit,
            rounds,
            100.0 * profit / exact.profit.max(1e-9)
        );
    };
    row(
        "this paper, Thm 7.2 (23+eps approx)",
        ours.profit,
        ours.stats.rounds,
    );
    row("Panconesi-Sozio style baseline", ps.profit, ps.stats.rounds);
    row("profit-greedy heuristic", greedy.profit, 0);
    println!(
        "{:<38} {:>10.2} {:>10} {:>9.1}%",
        "exact optimum (branch & bound)",
        exact.profit,
        "-",
        100.0
    );

    println!("\n-- admitted reservations (this paper) --");
    for &inst in &ours.selected {
        let d = universe.instance(inst);
        let demand = problem.demand(d.demand);
        println!(
            "  request {:>3}: link {}, slots [{:>2}, {:>2}], bandwidth {:.2}, profit {:>5.1}  (window [{}, {}])",
            d.demand.index(),
            d.network.index(),
            d.start.unwrap_or(0),
            d.start.unwrap_or(0) + demand.processing - 1,
            d.height,
            d.profit,
            demand.release,
            demand.deadline
        );
    }

    println!(
        "\ncertificate: OPT <= {:.2}; certified ratio {:.2} (theorem bound {:.1})",
        ours.diagnostics.optimum_upper_bound,
        ours.certified_ratio().unwrap_or(1.0),
        23.0 / (1.0 - config.epsilon)
    );
}
