//! Non-uniform bandwidths: the capacitated extension of the IPPS version.
//!
//! The same tree fabric as the quickstart, but core links have double
//! capacity while leaf links keep capacity 1, and the flows request
//! fractional bandwidth. Feasibility and the dual constraints use relative
//! heights `h(d)/c(e)` per edge.
//!
//! Run with: `cargo run --example capacitated_network`

use netsched::prelude::*;

fn main() {
    // A small fat-tree-ish fabric: vertex 0 is the core, 1..=2 aggregation,
    // 3..=8 racks. Core-aggregation links have capacity 2.0.
    let mut problem = TreeProblem::new(9);
    let edges = vec![
        (VertexId(0), VertexId(1)),
        (VertexId(0), VertexId(2)),
        (VertexId(1), VertexId(3)),
        (VertexId(1), VertexId(4)),
        (VertexId(1), VertexId(5)),
        (VertexId(2), VertexId(6)),
        (VertexId(2), VertexId(7)),
        (VertexId(2), VertexId(8)),
    ];
    let t = problem.add_network(edges).expect("valid tree");
    // The two core links get capacity 2.0, addressed by their end-points
    // (edge indices follow the network's canonical HLD order, so positional
    // capacity updates are reserved for path graphs).
    problem
        .set_capacity_between(t, VertexId(0), VertexId(1), 2.0)
        .unwrap();
    problem
        .set_capacity_between(t, VertexId(0), VertexId(2), 2.0)
        .unwrap();

    // Cross-aggregation flows (they all use both core links) plus local
    // flows under one aggregation switch.
    let flows: &[(usize, usize, f64, f64)] = &[
        (3, 6, 8.0, 0.8), // rack 3 -> rack 6, big flow
        (4, 7, 6.0, 0.7),
        (5, 8, 5.0, 0.6),
        (3, 4, 3.0, 0.9), // local flows
        (6, 7, 3.0, 0.9),
        (4, 5, 2.0, 0.4),
        (7, 8, 2.0, 0.4),
    ];
    for &(u, v, profit, height) in flows {
        problem
            .add_demand(VertexId::new(u), VertexId::new(v), profit, height, vec![t])
            .expect("valid demand");
    }
    let session = Scheduler::for_tree(&problem);
    let universe = session.universe();

    println!("== capacitated (non-uniform bandwidth) example ==");
    println!(
        "fabric: {} nodes; core links have capacity 2.0, access links 1.0",
        problem.num_vertices()
    );
    println!(
        "{} flows requesting fractional bandwidth\n",
        problem.num_demands()
    );

    let config = AlgorithmConfig::deterministic(0.1);
    // Mixed heights on a tree: the dispatch table selects Theorem 6.3.
    println!("auto-selected solver: {}\n", session.auto_solver().name());
    let solution = session.solve(&config);
    solution
        .verify(universe)
        .expect("feasible under capacities");
    let exact = exact_optimum(universe);

    println!("{:<28} {:>8}", "algorithm", "profit");
    println!(
        "{:<28} {:>8.1}",
        "arbitrary-height (Thm 6.3)", solution.profit
    );
    println!("{:<28} {:>8.1}", "exact optimum", exact.profit);

    println!("\n-- admitted flows --");
    for &inst in &solution.selected {
        let d = universe.instance(inst);
        let demand = problem.demand(d.demand);
        println!(
            "  flow v{} -> v{}: bandwidth {:.1}, profit {:.1}",
            demand.u.index(),
            demand.v.index(),
            d.height,
            d.profit
        );
    }

    // Show the per-edge loads to demonstrate that the doubled core links are
    // what lets several cross flows coexist.
    println!("\n-- link loads (selected flows) --");
    let loads = universe.edge_loads(t, &solution.selected);
    for (e, load) in loads.iter().enumerate() {
        let cap = problem.capacities(t)[e];
        let (u, v) = problem.network(t).edge_endpoints(EdgeId::new(e));
        // The difference-array prefix sum can leave a -0.0 residue on
        // edges whose loads fully cancel; clamp for display.
        println!(
            "  link v{}-v{}: load {:.2} / capacity {:.1}",
            u.index(),
            v.index(),
            load.max(0.0),
            cap
        );
        assert!(*load <= cap + 1e-9, "capacity violated");
    }

    // The same instance with uniform capacity 1 admits strictly fewer cross
    // flows: rebuild and compare.
    let mut uniform = TreeProblem::new(9);
    let t2 = uniform
        .add_network(
            problem
                .network(t)
                .edges()
                .map(|(_, uv)| uv)
                .collect::<Vec<_>>(),
        )
        .unwrap();
    for d in problem.demands() {
        uniform
            .add_demand(d.u, d.v, d.profit, d.height, vec![t2])
            .unwrap();
    }
    let uniform_exact = exact_optimum(&uniform.universe());
    println!(
        "\nwith uniform capacity 1.0 the optimum drops from {:.1} to {:.1}",
        exact.profit, uniform_exact.profit
    );
}
