//! Multi-tree routing: rack-to-rack transfers over several spanning trees.
//!
//! The "datacenter-spanning-trees" scenario: every transfer (demand) can be
//! routed over any of several spanning trees of the fabric it has access
//! to, but needs exclusive use of every link on its (unique) route within
//! the chosen tree — the unit-height tree-network problem of Theorem 5.3.
//!
//! The example reports schedule quality and the distributed cost model
//! (communication rounds, messages, MIS invocations) and compares the
//! distributed algorithm against the sequential Appendix A algorithm and a
//! greedy heuristic.
//!
//! Run with: `cargo run --example multi_tree_routing --release`

use netsched::prelude::*;

fn main() {
    let scenario = named_scenarios()
        .into_iter()
        .find(|s| s.name() == "datacenter-spanning-trees")
        .expect("scenario exists");
    let workload = match &scenario {
        Scenario::Tree { workload, .. } => workload.clone(),
        _ => unreachable!("datacenter scenario is a tree scenario"),
    };
    let problem = workload.build().expect("valid workload");
    let session = Scheduler::for_tree(&problem);
    let universe = session.universe();

    println!("== multi-tree routing example ==");
    println!("{}", scenario.description());
    println!(
        "\n{} racks, {} spanning trees, {} transfers, {} demand instances",
        problem.num_vertices(),
        problem.num_networks(),
        problem.num_demands(),
        universe.num_instances()
    );

    // Communication graph facts (why polylog rounds are non-trivial).
    let processors = problem.processors();
    let comm = CommGraph::build(&processors, problem.num_networks());
    println!(
        "communication graph: {} processors, {} edges, diameter {:?}",
        comm.num_processors(),
        comm.num_edges(),
        comm.diameter()
    );

    let config = AlgorithmConfig {
        epsilon: 0.1,
        mis: MisStrategy::Luby { seed: 11 },
        seed: 11,
    };
    // The session shares its cached universe and layerings across all three
    // solver runs (the dispatch table picks Theorem 5.3 for this shape).
    assert_eq!(session.auto_solver().name(), "tree-unit");
    let distributed = session.solve(&config);
    distributed.verify(universe).expect("feasible");
    let sequential = session.solve_with(&SequentialTreeSolver, &config);
    sequential.verify(universe).expect("feasible");
    let greedy = session.solve_with(
        &GreedySolver::new(netsched::baseline::GreedyOrder::Profit),
        &config,
    );

    println!(
        "\n{:<34} {:>10} {:>12} {:>10}",
        "algorithm", "profit", "scheduled", "rounds"
    );
    println!(
        "{:<34} {:>10.1} {:>12} {:>10}",
        "distributed (Thm 5.3, 7+eps)",
        distributed.profit,
        distributed.len(),
        distributed.stats.rounds
    );
    println!(
        "{:<34} {:>10.1} {:>12} {:>10}",
        "sequential (Appendix A, 3-approx)",
        sequential.profit,
        sequential.len(),
        sequential.stats.rounds
    );
    println!(
        "{:<34} {:>10.1} {:>12} {:>10}",
        "profit-greedy heuristic",
        greedy.profit,
        greedy.len(),
        0
    );

    let d = distributed.diagnostics;
    println!("\n-- distributed cost breakdown (Theorem 5.3 bound) --");
    println!("  epochs (layered-decomposition length) : {}", d.epochs);
    println!(
        "  stages per epoch (⌈log_ξ ε⌉)           : {}",
        d.stages_per_epoch
    );
    println!("  first-phase steps                      : {}", d.steps);
    println!(
        "  max steps in one stage                 : {}",
        d.max_steps_per_stage
    );
    println!(
        "  MIS invocations / MIS rounds           : {} / {}",
        distributed.stats.mis_invocations, distributed.stats.mis_rounds
    );
    println!(
        "  total communication rounds             : {}",
        distributed.stats.rounds
    );
    println!(
        "  total messages                         : {}",
        distributed.stats.messages
    );
    println!(
        "  certified ratio {:.2} <= worst-case bound {:.2}",
        distributed.certified_ratio().unwrap_or(1.0),
        approximation_bound(RaiseRule::Unit, d.delta, d.lambda)
    );

    // How many transfers were routed per tree.
    println!("\n-- load per spanning tree (distributed schedule) --");
    for t in 0..problem.num_networks() {
        let on_t = distributed.on_network(universe, NetworkId::new(t));
        let profit: f64 = on_t.iter().map(|&i| universe.profit(i)).sum();
        println!(
            "  tree {}: {} transfers, profit {:.1}",
            t,
            on_t.len(),
            profit
        );
    }
}
