//! Quickstart: schedule a handful of transfers on a shared tree network.
//!
//! Builds the worked example of the paper (the Figure 6 tree with the
//! Section 4 demands), opens a [`Scheduler`] session on it, lets the
//! dispatch table auto-select the paper algorithm (Theorem 5.3 here), and
//! then runs a portfolio over every registered solver on the same cached
//! session — universe and decomposition are built exactly once.
//!
//! Run with: `cargo run --example quickstart`

use netsched::prelude::*;

fn main() {
    // The 14-vertex tree of Figure 6 with three unit-height demands:
    // ⟨4, 13⟩ (profit 3), ⟨2, 3⟩ (profit 2) and ⟨12, 13⟩ (profit 1),
    // all owned by processors that can only access this one tree.
    let problem = netsched::graph::fixtures::figure6_problem();
    let session = Scheduler::for_tree(&problem);

    println!("== netsched quickstart ==");
    println!(
        "instance: {} vertices, {} tree network(s), {} demands, {} demand instances",
        problem.num_vertices(),
        problem.num_networks(),
        problem.num_demands(),
        session.universe().num_instances()
    );

    // The dispatch table picks the paper algorithm from the instance shape;
    // unit heights on a tree select Theorem 5.3 (ideal decomposition,
    // ∆ = 6, slackness 1 − ε, Luby MIS on the conflict graph).
    let config = AlgorithmConfig {
        epsilon: 0.1,
        mis: MisStrategy::Luby { seed: 2013 },
        seed: 2013,
    };
    println!(
        "auto-selected solver: {} (guarantee {:.2})",
        session.auto_solver().name(),
        session.auto_solver().guarantee(config.epsilon).unwrap()
    );
    let solution = session.solve(&config);
    solution
        .verify(session.universe())
        .expect("the algorithm must produce a feasible schedule");

    println!("\n-- schedule (distributed, Theorem 5.3) --");
    for &inst in &solution.selected {
        let d = session.universe().instance(inst);
        let demand = problem.demand(d.demand);
        println!(
            "  demand {} = <v{}, v{}>  profit {:.1}  scheduled on {} via {} edge(s)",
            d.demand,
            demand.u.index() + 1,
            demand.v.index() + 1,
            d.profit,
            d.network,
            d.path.len()
        );
    }
    println!("  total profit: {:.2}", solution.profit);

    println!("\n-- certificate & cost --");
    let diag = solution.diagnostics;
    println!("  critical-set size ∆          : {}", diag.delta);
    println!("  achieved slackness λ         : {:.4}", diag.lambda);
    println!(
        "  dual optimum upper bound     : {:.2}",
        diag.optimum_upper_bound
    );
    println!(
        "  certified approximation ratio: {:.2} (worst-case bound {:.2})",
        solution.certified_ratio().unwrap_or(1.0),
        approximation_bound(RaiseRule::Unit, diag.delta, diag.lambda)
    );
    println!(
        "  communication rounds {} (of which MIS {}), messages {}",
        solution.stats.rounds, solution.stats.mis_rounds, solution.stats.messages
    );

    // A portfolio over the full registry (paper algorithms + baselines)
    // reuses the same session caches and keeps the best verified schedule.
    println!("\n-- portfolio over the solver registry --");
    let portfolio = session.portfolio(&netsched::registry(), &config);
    println!(
        "  {:<18} {:>8} {:>10} {:>12}",
        "solver", "profit", "certified", "guarantee"
    );
    for run in &portfolio.runs {
        println!(
            "  {:<18} {:>8.2} {:>10} {:>12}",
            run.name,
            run.solution.profit,
            run.solution
                .certified_ratio()
                .map_or("-".to_string(), |r| format!("{r:.2}")),
            run.guarantee.map_or("-".to_string(), |g| format!("{g:.2}")),
        );
    }
    let best = portfolio.best().expect("at least one verified run");
    println!(
        "  best verified: {} with profit {:.2}",
        best.name, best.solution.profit
    );

    let counts = session.build_counts();
    println!(
        "\nsession caches: universe built {} time(s), decomposition {} time(s) — across {} solver runs",
        counts.universe,
        counts.layering,
        portfolio.runs.len() + 1
    );
}
