//! Quickstart: schedule a handful of transfers on a shared tree network.
//!
//! Builds the worked example of the paper (the Figure 6 tree with the
//! Section 4 demands), runs the distributed (7 + ε)-approximation of
//! Theorem 5.3, and prints the schedule together with its dual certificate
//! and the true optimum.
//!
//! Run with: `cargo run --example quickstart`

use netsched::prelude::*;

fn main() {
    // The 14-vertex tree of Figure 6 with three unit-height demands:
    // ⟨4, 13⟩ (profit 3), ⟨2, 3⟩ (profit 2) and ⟨12, 13⟩ (profit 1),
    // all owned by processors that can only access this one tree.
    let problem = netsched::graph::fixtures::figure6_problem();
    let universe = problem.universe();

    println!("== netsched quickstart ==");
    println!(
        "instance: {} vertices, {} tree network(s), {} demands, {} demand instances",
        problem.num_vertices(),
        problem.num_networks(),
        problem.num_demands(),
        universe.num_instances()
    );

    // The distributed algorithm of Theorem 5.3: ideal tree decomposition
    // (∆ = 6), slackness 1 − ε, Luby MIS on the conflict graph.
    let config = AlgorithmConfig {
        epsilon: 0.1,
        mis: MisStrategy::Luby { seed: 2013 },
        seed: 2013,
    };
    let solution = solve_unit_tree(&problem, &config);
    solution
        .verify(&universe)
        .expect("the algorithm must produce a feasible schedule");

    println!("\n-- schedule (distributed, Theorem 5.3) --");
    for &inst in &solution.selected {
        let d = universe.instance(inst);
        let demand = problem.demand(d.demand);
        println!(
            "  demand {} = <v{}, v{}>  profit {:.1}  scheduled on {} via {} edge(s)",
            d.demand,
            demand.u.index() + 1,
            demand.v.index() + 1,
            d.profit,
            d.network,
            d.path.len()
        );
    }
    println!("  total profit: {:.2}", solution.profit);

    println!("\n-- certificate & cost --");
    let diag = solution.diagnostics;
    println!("  critical-set size ∆          : {}", diag.delta);
    println!("  achieved slackness λ         : {:.4}", diag.lambda);
    println!("  dual optimum upper bound     : {:.2}", diag.optimum_upper_bound);
    println!(
        "  certified approximation ratio: {:.2} (worst-case bound {:.2})",
        solution.certified_ratio().unwrap_or(1.0),
        approximation_bound(RaiseRule::Unit, diag.delta, diag.lambda)
    );
    println!(
        "  communication rounds {} (of which MIS {}), messages {}",
        solution.stats.rounds, solution.stats.mis_rounds, solution.stats.messages
    );

    // Compare against the exact optimum (tiny instance) and the sequential
    // 3-approximation of Appendix A.
    let exact = exact_optimum(&universe);
    let sequential = solve_sequential_tree(&problem);
    println!("\n-- references --");
    println!("  exact optimum                : {:.2}", exact.profit);
    println!("  sequential Appendix A        : {:.2}", sequential.profit);
    println!(
        "  empirical ratio (opt/ours)   : {:.3}",
        exact.profit / solution.profit
    );
}
