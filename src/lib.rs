//! # netsched
//!
//! A Rust implementation of **"Distributed Algorithms for Scheduling on Line
//! and Tree Networks"** (Chakaravarthy, Roy, Sabharwal; arXiv:1205.1924,
//! IPPS 2013 version "… with Non-uniform Bandwidths"): distributed
//! constant-factor approximation algorithms for throughput maximization when
//! processors compete for exclusive routes on shared tree networks and for
//! time windows on line networks.
//!
//! This crate is a thin facade over the workspace:
//!
//! * [`graph`] (`netsched-graph`) — networks, demands, problem instances and
//!   the demand-instance universe;
//! * [`decomp`] (`netsched-decomp`) — tree decompositions (root-fixing,
//!   balancing, ideal) and layered decompositions;
//! * [`distrib`] (`netsched-distrib`) — the synchronous message-passing
//!   simulator, conflict graphs and Luby's distributed MIS;
//! * [`core`] (`netsched-core`) — the two-phase primal-dual framework and
//!   the paper's algorithms (Theorems 5.3, 6.3, 7.1, 7.2, Appendix A);
//! * [`baseline`] (`netsched-baseline`) — Panconesi–Sozio reconstruction,
//!   greedy heuristics, exact solvers and optimum upper bounds;
//! * [`workloads`] (`netsched-workloads`) — seeded workload generators and
//!   named scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use netsched::prelude::*;
//!
//! // Two racks exchanging data over one shared spanning tree.
//! let mut problem = TreeProblem::new(6);
//! let t = problem
//!     .add_network(vec![
//!         (VertexId(0), VertexId(1)),
//!         (VertexId(1), VertexId(2)),
//!         (VertexId(2), VertexId(3)),
//!         (VertexId(2), VertexId(4)),
//!         (VertexId(4), VertexId(5)),
//!     ])
//!     .unwrap();
//! problem.add_unit_demand(VertexId(0), VertexId(3), 5.0, vec![t]).unwrap();
//! problem.add_unit_demand(VertexId(1), VertexId(5), 4.0, vec![t]).unwrap();
//! problem.add_unit_demand(VertexId(3), VertexId(5), 2.0, vec![t]).unwrap();
//!
//! let solution = solve_unit_tree(&problem, &AlgorithmConfig::deterministic(0.1));
//! let universe = problem.universe();
//! solution.verify(&universe).unwrap();
//! assert!(solution.profit > 0.0);
//! // Every run carries a machine-checked optimum upper bound.
//! assert!(solution.diagnostics.optimum_upper_bound >= solution.profit);
//! ```

#![warn(missing_docs)]

/// Re-export of `netsched-graph`.
pub use netsched_graph as graph;

/// Re-export of `netsched-decomp`.
pub use netsched_decomp as decomp;

/// Re-export of `netsched-distrib`.
pub use netsched_distrib as distrib;

/// Re-export of `netsched-core`.
pub use netsched_core as core;

/// Re-export of `netsched-baseline`.
pub use netsched_baseline as baseline;

/// Re-export of `netsched-workloads`.
pub use netsched_workloads as workloads;

/// The most commonly used types and entry points.
pub mod prelude {
    pub use netsched_baseline::{
        best_greedy, exact_optimum, solve_ps_line_narrow, solve_ps_line_unit,
        weighted_interval_optimum,
    };
    pub use netsched_core::{
        approximation_bound, solve_arbitrary_tree, solve_line_arbitrary, solve_line_unit,
        solve_narrow_tree, solve_sequential_tree, solve_unit_tree, AlgorithmConfig, RaiseRule,
        Solution,
    };
    pub use netsched_decomp::{
        balancing_decomposition, ideal_decomposition, root_fixing_decomposition,
        InstanceLayering, TreeDecomposition, TreeDecompositionKind,
    };
    pub use netsched_distrib::{CommGraph, ConflictGraph, MisStrategy, RoundStats};
    pub use netsched_graph::{
        Demand, DemandId, DemandInstanceUniverse, EdgeId, GlobalEdge, InstanceId, LineProblem,
        NetworkId, Processor, ProcessorId, TreeNetwork, TreeProblem, VertexId,
    };
    pub use netsched_workloads::{
        named_scenarios, HeightDistribution, LineWorkload, ProfitDistribution, Scenario,
        TreeTopology, TreeWorkload,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let workload = TreeWorkload {
            vertices: 24,
            networks: 2,
            demands: 20,
            seed: 1,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        let solution = solve_unit_tree(&problem, &AlgorithmConfig::deterministic(0.1));
        solution.verify(&universe).unwrap();
        let exact = exact_optimum(&universe);
        assert!(exact.profit + 1e-9 >= solution.profit);
        assert!(solution.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit);
    }
}
