//! # netsched
//!
//! A Rust implementation of **"Distributed Algorithms for Scheduling on Line
//! and Tree Networks"** (Chakaravarthy, Roy, Sabharwal; arXiv:1205.1924,
//! IPPS 2013 version "… with Non-uniform Bandwidths"): distributed
//! constant-factor approximation algorithms for throughput maximization when
//! processors compete for exclusive routes on shared tree networks and for
//! time windows on line networks.
//!
//! ## The Solver / Scheduler API
//!
//! Everything runs through two abstractions from [`core`]:
//!
//! * [`Solver`](prelude::Solver) — a named algorithm with an optional
//!   worst-case guarantee. The paper's six algorithms
//!   (`netsched_core::registry`) and every baseline
//!   (`netsched_baseline::registry`) implement it; [`registry`] chains both.
//! * [`Scheduler`](prelude::Scheduler) — a *session* around one problem
//!   ([`TreeProblem`](prelude::TreeProblem) or
//!   [`LineProblem`](prelude::LineProblem)). It builds the demand-instance
//!   universe, the layered decompositions and the wide/narrow split **once**
//!   and reuses them across every solve, sweep and portfolio on that
//!   instance.
//!
//! [`Scheduler::solve`](prelude::Scheduler::solve) auto-selects the paper
//! algorithm by instance shape (line vs tree; all-wide vs all-narrow vs
//! mixed heights — the Theorem 5.3 / 6.3 / 7.1 / 7.2 dispatch table, see
//! `netsched_core::solver`), and
//! [`Scheduler::portfolio`](prelude::Scheduler::portfolio) runs any set of
//! registered solvers on the shared caches and keeps the best certified
//! schedule.
//!
//! ## Quickstart
//!
//! ```
//! use netsched::prelude::*;
//!
//! // Two racks exchanging data over one shared spanning tree.
//! let mut problem = TreeProblem::new(6);
//! let t = problem
//!     .add_network(vec![
//!         (VertexId(0), VertexId(1)),
//!         (VertexId(1), VertexId(2)),
//!         (VertexId(2), VertexId(3)),
//!         (VertexId(2), VertexId(4)),
//!         (VertexId(4), VertexId(5)),
//!     ])
//!     .unwrap();
//! problem.add_unit_demand(VertexId(0), VertexId(3), 5.0, vec![t]).unwrap();
//! problem.add_unit_demand(VertexId(1), VertexId(5), 4.0, vec![t]).unwrap();
//! problem.add_unit_demand(VertexId(3), VertexId(5), 2.0, vec![t]).unwrap();
//!
//! // One session; the universe and decomposition are built exactly once
//! // even across repeated solves with different ε.
//! let session = Scheduler::for_tree(&problem);
//! assert_eq!(session.auto_solver().name(), "tree-unit"); // Theorem 5.3
//! let solution = session.solve(&AlgorithmConfig::deterministic(0.1));
//! solution.verify(session.universe()).unwrap();
//! assert!(solution.profit > 0.0);
//! // Every run carries a machine-checked optimum upper bound.
//! assert!(solution.diagnostics.optimum_upper_bound >= solution.profit);
//!
//! // A portfolio over every registered solver keeps the best verified run.
//! let portfolio = session.portfolio(&netsched::registry(), &AlgorithmConfig::deterministic(0.1));
//! assert!(portfolio.best_solution().profit + 1e-9 >= solution.profit);
//! assert_eq!(session.build_counts().universe, 1);
//! ```
//!
//! The pre-redesign free functions (`solve_unit_tree`,
//! `solve_line_arbitrary`, …) remain available as thin wrappers that create
//! a single-call session.
//!
//! ## Workspace layout
//!
//! * [`graph`] (`netsched-graph`) — networks, demands, problem instances and
//!   the demand-instance universe;
//! * [`decomp`] (`netsched-decomp`) — tree decompositions (root-fixing,
//!   balancing, ideal) and layered decompositions;
//! * [`distrib`] (`netsched-distrib`) — the synchronous message-passing
//!   simulator, conflict graphs and Luby's distributed MIS;
//! * [`core`] (`netsched-core`) — the two-phase primal-dual framework, the
//!   paper's algorithms (Theorems 5.3, 6.3, 7.1, 7.2, Appendix A) and the
//!   Solver/Scheduler session API;
//! * [`baseline`] (`netsched-baseline`) — Panconesi–Sozio reconstruction,
//!   greedy heuristics, exact solvers and optimum upper bounds, all behind
//!   the same `Solver` trait;
//! * [`workloads`] (`netsched-workloads`) — seeded workload generators,
//!   named scenarios and JSON instance serialization.

#![warn(missing_docs)]

/// Re-export of `netsched-graph`.
pub use netsched_graph as graph;

/// Re-export of `netsched-decomp`.
pub use netsched_decomp as decomp;

/// Re-export of `netsched-distrib`.
pub use netsched_distrib as distrib;

/// Re-export of `netsched-core`.
pub use netsched_core as core;

/// Re-export of `netsched-baseline`.
pub use netsched_baseline as baseline;

/// Re-export of `netsched-workloads`.
pub use netsched_workloads as workloads;

/// Every registered solver: the paper's algorithms
/// ([`netsched_core::registry`]) followed by the baselines
/// ([`netsched_baseline::registry`]). Feed this to
/// [`Scheduler::portfolio`](netsched_core::Scheduler::portfolio) or iterate
/// it for conformance sweeps.
pub fn registry() -> Vec<Box<dyn netsched_core::Solver>> {
    let mut solvers = netsched_core::registry();
    solvers.extend(netsched_baseline::registry());
    solvers
}

/// The most commonly used types and entry points.
pub mod prelude {
    // The unified Solver / Scheduler session API.
    pub use netsched_core::{
        approximation_bound, AlgorithmConfig, BuildCounts, Portfolio, PortfolioRun, Problem,
        ProblemKind, RaiseRule, Scheduler, Solution, SolveContext, Solver,
    };
    // The paper's algorithms: solver types and the historical free-function
    // wrappers.
    pub use netsched_core::{
        solve_arbitrary_tree, solve_line_arbitrary, solve_line_unit, solve_narrow_tree,
        solve_sequential_tree, solve_unit_tree, ArbitraryTreeSolver, LineArbitrarySolver,
        LineNarrowSolver, LineUnitSolver, NarrowTreeSolver, SequentialTreeSolver, UnitTreeSolver,
    };
    // Baselines.
    pub use netsched_baseline::{
        best_greedy, exact_optimum, solve_ps_line_narrow, solve_ps_line_unit,
        weighted_interval_optimum, ExactSolver, GreedySolver, IntervalDpSolver, PsLineNarrowSolver,
        PsLineUnitSolver,
    };
    // Decompositions and the distributed substrate.
    pub use netsched_decomp::{
        balancing_decomposition, ideal_decomposition, root_fixing_decomposition, InstanceLayering,
        TreeDecomposition, TreeDecompositionKind,
    };
    pub use netsched_distrib::{CommGraph, ConflictGraph, MisStrategy, RoundStats};
    // The data model.
    pub use netsched_graph::{
        Demand, DemandId, DemandInstanceUniverse, EdgeId, GlobalEdge, InstanceId, LineProblem,
        NetworkId, Processor, ProcessorId, TreeNetwork, TreeProblem, VertexId,
    };
    // Workloads and scenarios.
    pub use netsched_workloads::{
        named_scenarios, HeightDistribution, LineWorkload, ProfitDistribution, Scenario,
        TreeTopology, TreeWorkload,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let workload = TreeWorkload {
            vertices: 24,
            networks: 2,
            demands: 20,
            seed: 1,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let session = Scheduler::for_tree(&problem);
        let solution = session.solve(&AlgorithmConfig::deterministic(0.1));
        solution.verify(session.universe()).unwrap();
        let exact = exact_optimum(session.universe());
        assert!(exact.profit + 1e-9 >= solution.profit);
        assert!(solution.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit);
        assert_eq!(session.build_counts().universe, 1);
    }

    #[test]
    fn combined_registry_covers_paper_algorithms_and_baselines() {
        let names: Vec<&str> = crate::registry().iter().map(|s| s.name()).collect();
        assert!(names.contains(&"tree-unit"));
        assert!(names.contains(&"line-arbitrary"));
        assert!(names.contains(&"exact"));
        assert!(names.contains(&"ps-line-unit"));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "solver names must be unique");
    }
}
