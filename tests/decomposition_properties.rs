//! Property-based tests for the decomposition machinery (Section 4).
//!
//! These check the paper's structural lemmas on randomly generated trees and
//! demand sets:
//!
//! * Lemma 4.1 — the ideal tree decomposition is a valid tree decomposition
//!   with pivot size ≤ 2 and depth ≤ 2⌈log n⌉ + 1;
//! * Lemma 4.2 / 4.3 — the derived layered decomposition has ∆ ≤ 6 and
//!   satisfies the interference property;
//! * Section 7 — the line length-class decomposition has ∆ ≤ 3 and satisfies
//!   the interference property.

use netsched::prelude::*;
use netsched_decomp::{
    balancing_decomposition, ideal_decomposition, ideal_depth_bound, root_fixing_decomposition,
    InstanceLayering, TreeDecompositionKind,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random tree on `n` vertices from a seed (uniform attachment).
fn random_tree(seed: u64, n: usize) -> TreeNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (1..n)
        .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
        .collect();
    TreeNetwork::new(NetworkId::new(0), n, edges).unwrap()
}

/// Builds a random unit-height tree problem.
fn random_tree_problem(seed: u64, n: usize, r: usize, m: usize) -> TreeProblem {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut p = TreeProblem::new(n);
    let mut nets = Vec::new();
    for q in 0..r {
        let mut rng_t = StdRng::seed_from_u64(seed.wrapping_add(q as u64));
        let edges = (1..n)
            .map(|i| (VertexId::new(rng_t.gen_range(0..i)), VertexId::new(i)))
            .collect();
        nets.push(p.add_network(edges).unwrap());
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        let access: Vec<NetworkId> = nets.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
        let access = if access.is_empty() {
            vec![nets[0]]
        } else {
            access
        };
        p.add_unit_demand(
            VertexId::new(u),
            VertexId::new(v),
            rng.gen_range(1.0..50.0),
            access,
        )
        .unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 4.1: ideal decompositions are valid, have pivot size ≤ 2 and
    /// logarithmic depth, on arbitrary random trees.
    #[test]
    fn ideal_decomposition_properties(seed in any::<u64>(), n in 2usize..200) {
        let tree = random_tree(seed, n);
        let h = ideal_decomposition(&tree);
        prop_assert!(h.is_valid_for(&tree));
        prop_assert!(h.pivot_size(&tree) <= 2);
        prop_assert!(h.max_depth() <= ideal_depth_bound(n));
    }

    /// The three decompositions are all valid tree decompositions; the
    /// root-fixing one has pivot size 1 and the balancing one has
    /// logarithmic depth.
    #[test]
    fn all_decompositions_are_valid(seed in any::<u64>(), n in 2usize..80) {
        let tree = random_tree(seed, n);
        let rf = root_fixing_decomposition(&tree, VertexId::new(0));
        prop_assert!(rf.is_valid_for(&tree));
        prop_assert_eq!(rf.pivot_size(&tree), 1);
        let bal = balancing_decomposition(&tree);
        prop_assert!(bal.is_valid_for(&tree));
        let log_bound = (usize::BITS - (n.max(2) - 1).leading_zeros()) + 1;
        prop_assert!(bal.max_depth() <= log_bound);
    }

    /// Lemma 4.3: the ideal layering has ∆ ≤ 6, at most 2⌈log n⌉ + 1 groups
    /// and satisfies the interference property; the Appendix A layering has
    /// ∆ ≤ 2.
    #[test]
    fn tree_layerings_satisfy_interference(
        seed in any::<u64>(),
        n in 4usize..40,
        r in 1usize..3,
        m in 1usize..25,
    ) {
        let p = random_tree_problem(seed, n, r, m);
        let u = p.universe();
        let ideal = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        prop_assert!(ideal.max_critical() <= 6);
        prop_assert!(ideal.num_groups() as u32 <= ideal_depth_bound(n));
        prop_assert!(ideal.check_layered_property(&u).is_ok());

        let appendix = InstanceLayering::appendix_a(&p, &u);
        prop_assert!(appendix.max_critical() <= 2);
        prop_assert!(appendix.check_layered_property(&u).is_ok());
    }

    /// Section 7: the line length-class layering has ∆ ≤ 3,
    /// ⌈log(L_max/L_min)⌉ + 1 groups and satisfies the interference
    /// property.
    #[test]
    fn line_layering_satisfies_interference(
        seed in any::<u64>(),
        n in 8u32..64,
        m in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = LineProblem::new(n as usize, 2);
        let acc = vec![NetworkId::new(0), NetworkId::new(1)];
        for _ in 0..m {
            let len = rng.gen_range(1..=(n / 2).max(1));
            let release = rng.gen_range(0..=(n - len));
            let slack = rng.gen_range(0..=(n - release - len).min(4));
            p.add_demand(release, release + len - 1 + slack, len, rng.gen_range(1.0..10.0), 1.0, acc.clone()).unwrap();
        }
        let u = p.universe();
        let layering = InstanceLayering::line_length_classes(&u);
        prop_assert!(layering.max_critical() <= 3);
        let (lmax, lmin) = p.length_bounds();
        let group_bound = (lmax as f64 / lmin as f64).log2().floor() as usize + 1;
        prop_assert!(layering.num_groups() <= group_bound);
        prop_assert!(layering.check_layered_property(&u).is_ok());
    }

    /// Paths and LCA queries agree with brute-force BFS distances.
    #[test]
    fn tree_paths_match_bfs(seed in any::<u64>(), n in 2usize..60) {
        let tree = random_tree(seed, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..10 {
            let u = VertexId::new(rng.gen_range(0..n));
            let v = VertexId::new(rng.gen_range(0..n));
            // BFS distance.
            let mut dist = vec![usize::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            dist[u.index()] = 0;
            queue.push_back(u);
            while let Some(x) = queue.pop_front() {
                for &(y, _) in tree.neighbors(x) {
                    if dist[y.index()] == usize::MAX {
                        dist[y.index()] = dist[x.index()] + 1;
                        queue.push_back(y);
                    }
                }
            }
            prop_assert_eq!(dist[v.index()] as u32, tree.distance(u, v));
            prop_assert_eq!(tree.path_edges(u, v).len(), dist[v.index()]);
            let verts = tree.path_vertices(u, v);
            prop_assert_eq!(verts.len(), dist[v.index()] + 1);
            prop_assert_eq!(verts[0], u);
            prop_assert_eq!(*verts.last().unwrap(), v);
        }
    }
}
