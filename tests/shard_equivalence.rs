//! Determinism and equivalence suite for the sharded conflict engine.
//!
//! The sharding refactor is a pure representation change: on every input,
//! at every thread count, the sharded build must produce a merged adjacency
//! byte-identical to the pre-shard single-CSR path, and the shard-parallel
//! two-phase engine must reproduce the reference engine's schedules and
//! certificates exactly. These tests pin that contract on random
//! multi-network tree and line instances, under both MIS strategies,
//! sweeping the worker count through the rayon shim's global configuration.

use netsched_core::framework::{run_two_phase, run_two_phase_on, run_two_phase_reference};
use netsched_core::{AlgorithmConfig, RaiseRule, Scheduler, Solution};
use netsched_decomp::{InstanceLayering, TreeDecompositionKind};
use netsched_distrib::{
    maximal_independent_set, sharded_mis, ConflictGraph, MisScratch, MisStrategy, RoundStats,
    ShardedConflictGraph,
};
use netsched_graph::{
    ArrivingDemand, DemandId, DemandInstanceUniverse, EdgePath, InstanceId, NetworkId,
    UniverseDelta,
};
use netsched_workloads::{many_networks_line, many_networks_tree, skewed_networks_line};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPoolBuilder;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(n).build_global().ok();
    let out = f();
    ThreadPoolBuilder::new().num_threads(0).build_global().ok();
    out
}

/// Byte-level equality of two conflict graphs: identical per-vertex
/// neighbor slices (which pins the CSR `offsets`/`neighbors` arrays) and
/// edge counts.
fn assert_same_graph(a: &ConflictGraph, b: &ConflictGraph, label: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{label}: vertex count");
    assert_eq!(a.num_edges(), b.num_edges(), "{label}: edge count");
    for v in 0..a.num_vertices() {
        let d = InstanceId::new(v);
        assert_eq!(a.neighbors(d), b.neighbors(d), "{label}: adjacency of {d}");
    }
}

/// Exact equality of everything the solution certifies (stats are allowed
/// to differ between the simulator-driven and array-driven Luby by
/// accounting constants, so they are excluded).
fn assert_same_solution(a: &Solution, b: &Solution, label: &str) {
    assert_eq!(a.selected, b.selected, "{label}: schedule");
    assert_eq!(a.raised_instances, b.raised_instances, "{label}: raised");
    assert_eq!(a.profit, b.profit, "{label}: profit");
    let (da, db) = (a.diagnostics, b.diagnostics);
    assert_eq!(da.lambda, db.lambda, "{label}: lambda");
    assert_eq!(da.dual_objective, db.dual_objective, "{label}: dual");
    assert_eq!(da.steps, db.steps, "{label}: steps");
    assert_eq!(
        da.optimum_upper_bound, db.optimum_upper_bound,
        "{label}: upper bound"
    );
    assert_eq!(a.certified_ratio(), b.certified_ratio(), "{label}: ratio");
}

fn universes() -> Vec<(String, DemandInstanceUniverse, InstanceLayering)> {
    let mut out = Vec::new();
    for (i, seed) in [3u64, 41].into_iter().enumerate() {
        let p = many_networks_tree(6 + 2 * i, 70, seed).build().unwrap();
        let u = p.universe();
        let l = InstanceLayering::for_tree_problem(&p, &u, TreeDecompositionKind::Ideal);
        out.push((format!("tree-{seed}"), u, l));
    }
    for (i, seed) in [9u64, 77].into_iter().enumerate() {
        let p = many_networks_line(4 + 4 * i, 60, seed).build().unwrap();
        let u = p.universe();
        let l = InstanceLayering::line_length_classes(&u);
        out.push((format!("line-{seed}"), u, l));
    }
    let p = skewed_networks_line(8, 80, 1.5, 2013).build().unwrap();
    let u = p.universe();
    let l = InstanceLayering::line_length_classes(&u);
    out.push(("skewed-line".to_string(), u, l));
    out
}

#[test]
fn merged_adjacency_is_byte_identical_across_paths_and_thread_counts() {
    for (name, universe, _) in universes() {
        let flat = ConflictGraph::build(&universe);
        for threads in [1usize, 2, 4] {
            let merged = with_threads(threads, || {
                let sharded = ShardedConflictGraph::build(&universe);
                assert_eq!(sharded.num_edges(), flat.num_edges());
                sharded.merged()
            });
            assert_same_graph(&flat, &merged, &format!("{name} @ {threads} threads"));
        }
    }
}

#[test]
fn sharded_mis_equals_flat_mis_at_every_thread_count() {
    // A windowed line instance large enough to clear the engine's parallel
    // gates, so the shard-parallel code paths really execute.
    let universe = many_networks_line(8, 150, 5).build().unwrap().universe();
    assert!(universe.num_instances() >= 1024, "need a large active set");
    let flat = ConflictGraph::build(&universe);
    let sharded = ShardedConflictGraph::build(&universe);
    let active: Vec<InstanceId> = universe.instance_ids().collect();
    for strategy in [
        MisStrategy::SequentialGreedy,
        MisStrategy::Luby { seed: 17 },
        MisStrategy::Luby { seed: 0xC0FFEE },
    ] {
        let mut stats = RoundStats::new();
        let reference = maximal_independent_set(&flat, &active, strategy, &mut stats);
        for threads in [1usize, 2, 4] {
            let ours = with_threads(threads, || {
                let mut scratch = MisScratch::new(universe.num_instances());
                let mut stats = RoundStats::new();
                sharded_mis(&sharded, &active, strategy, &mut stats, &mut scratch)
            });
            assert_eq!(reference, ours, "{strategy:?} @ {threads} threads");
        }
    }
}

#[test]
fn engine_schedules_match_the_reference_engine_exactly() {
    let configs = [
        AlgorithmConfig::deterministic(0.1),
        AlgorithmConfig {
            epsilon: 0.1,
            mis: MisStrategy::Luby { seed: 99 },
            seed: 99,
        },
    ];
    for (name, universe, layering) in universes() {
        for config in &configs {
            let reference = run_two_phase_reference(&universe, &layering, RaiseRule::Unit, config);
            for threads in [1usize, 4] {
                let ours = with_threads(threads, || {
                    let conflict = ShardedConflictGraph::build(&universe);
                    run_two_phase_on(&universe, &conflict, &layering, RaiseRule::Unit, config)
                });
                ours.verify(&universe).unwrap();
                assert_same_solution(
                    &reference,
                    &ours,
                    &format!("{name} / {:?} @ {threads} threads", config.mis),
                );
            }
        }
    }
}

#[test]
fn tree_sessions_match_the_reference_engine_through_the_scheduler() {
    let problem = many_networks_tree(8, 90, 23).build().unwrap();
    let universe = problem.universe();
    let layering =
        InstanceLayering::for_tree_problem(&problem, &universe, TreeDecompositionKind::Ideal);
    for config in [
        AlgorithmConfig::deterministic(0.15),
        AlgorithmConfig {
            epsilon: 0.15,
            mis: MisStrategy::Luby { seed: 7 },
            seed: 7,
        },
    ] {
        let reference = run_two_phase_reference(&universe, &layering, RaiseRule::Unit, &config);
        let session = Scheduler::for_tree(&problem);
        let a = session.solve(&config);
        let b = session.solve(&config);
        assert_same_solution(&reference, &a, "session vs reference");
        assert_same_solution(&a, &b, "repeat solve");
        // The sharded conflict graph is a session cache: one build for any
        // number of solves.
        assert_eq!(session.build_counts().conflict, 1);
    }
}

#[test]
fn narrow_rule_matches_reference_on_capacitated_instances() {
    // Non-uniform capacities exercise the weighted-beta mirror tree and
    // the range-minimum eligibility/can_add paths.
    use netsched_workloads::HeightDistribution;
    let mut workload = many_networks_tree(5, 60, 31);
    workload.heights = HeightDistribution::Mixed {
        wide_fraction: 0.0,
        min_narrow: 0.1,
    };
    let mut problem = workload.build().unwrap();
    for t in 0..problem.num_networks() {
        for e in (0..71).step_by(5) {
            problem
                .set_capacity(NetworkId::new(t), e, 1.5 + (e % 5) as f64 * 0.5)
                .unwrap();
        }
    }
    let universe = problem.universe();
    assert!(!universe.is_uniform_capacity());
    let layering =
        InstanceLayering::for_tree_problem(&problem, &universe, TreeDecompositionKind::Ideal);
    for rule in [RaiseRule::Unit, RaiseRule::Narrow] {
        let config = AlgorithmConfig::deterministic(0.1);
        let reference = run_two_phase_reference(&universe, &layering, rule, &config);
        let ours = run_two_phase(&universe, &layering, rule, &config);
        assert_same_solution(&reference, &ours, &format!("capacitated {rule:?}"));
    }
}

/// One randomized hot-shard churn trace: several epochs whose expiries and
/// arrivals concentrate on two "hot" networks, so the same shards are
/// spliced over and over. After every epoch the incrementally maintained
/// sharding (per-shard run arrays and global-id columns, kept up to date by
/// the sub-shard run-order maintenance in `ShardedUniverse::apply_delta`)
/// must match a from-scratch rebuild exactly, and the merged adjacency must
/// stay byte-identical.
fn hot_shard_churn_case(seed: u64) {
    let base = many_networks_line(6, 90, seed ^ 0x9e37_79b9);
    let timeslots = base.timeslots as usize;
    let problem = base.build().unwrap();
    let mut universe = problem.universe();
    let mut conflict = ShardedConflictGraph::build(&universe);
    let mut delta = UniverseDelta::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..5 {
        let nets = universe.num_networks();
        let hot = [
            NetworkId::new(rng.gen_range(0..nets)),
            NetworkId::new(rng.gen_range(0..nets)),
        ];

        // Expire a few demands whose instances touch the hot networks.
        let mut expired: Vec<DemandId> = Vec::new();
        for &t in &hot {
            for &d in universe.instances_on_network(t).iter().take(3) {
                expired.push(universe.demand_of(d));
            }
        }
        expired.sort_unstable();
        expired.dedup();
        expired.truncate(4);

        // Arrivals land on the same hot networks.
        let mut arrivals = Vec::new();
        for k in 0..3 {
            let t = hot[k % 2];
            let len: usize = rng.gen_range(2..6);
            let start: usize = rng.gen_range(0..timeslots - len);
            arrivals.push(ArrivingDemand {
                profit: rng.gen_range(1.0..8.0),
                height: 1.0,
                instances: vec![(
                    t,
                    EdgePath::interval(start, start + len - 1),
                    Some(start as u32),
                )],
            });
        }

        universe.apply_demand_delta(&expired, &arrivals, &mut delta);
        conflict.apply_delta(&universe, &delta);

        let fresh = ShardedConflictGraph::build(&universe);
        for t in (0..universe.num_networks()).map(NetworkId::new) {
            let inc = conflict.sharding().shard(t);
            let full = fresh.sharding().shard(t);
            assert_eq!(
                inc.globals(),
                full.globals(),
                "round {round}: shard {t} global ids"
            );
            assert_eq!(inc.runs(), full.runs(), "round {round}: shard {t} runs");
        }
        assert_same_graph(
            &fresh.merged(),
            &conflict.merged(),
            &format!("round {round}: merged adjacency"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Incremental run-order maintenance is equivalent to a full re-sweep
    /// on randomized hot-shard churn traces, at every worker count.
    #[test]
    fn incremental_run_order_matches_full_resweep_on_hot_shard_churn(seed in any::<u64>()) {
        for threads in [1usize, 2, 4] {
            with_threads(threads, || hot_shard_churn_case(seed));
        }
    }
}
