//! The anytime-admission contract of deadline-bounded epochs.
//!
//! [`ServiceSession::step_with_deadline`] cuts the two-phase engine at a
//! cooperative [`Budget`] and must still hand back a *servable* epoch.
//! This suite pins the contract:
//!
//! 1. **Feasibility is unconditional** — however early the cut, the
//!    epoch's schedule verifies against the session universe and its
//!    optimum upper bound dominates its own profit (weak duality holds
//!    for any dual assignment, so a truncated certificate is weaker,
//!    never wrong).
//! 2. **Truncation is visible and carried** — a cut epoch reports
//!    [`CertificateQuality::Truncated`] in its stats, the session flags
//!    `anytime_pending`, and the unfinished certification work survives
//!    in the warm state.
//! 3. **Reconvergence** — a follow-up *un*deadlined step (even with an
//!    empty batch) finishes the carried work: the certificate returns to
//!    `Full`, `λ ≥ 1 − ε`, the certified ratio is within the
//!    auto-selected solver's guarantee, and the converged `λ` dominates
//!    the last truncated `λ` (duals only grow between the cut and the
//!    resume).
//! 4. **Exactness under the deterministic strategy** — cutting the very
//!    first solve at *any* round budget and then resuming without a
//!    deadline reproduces the uninterrupted cold solve bit for bit
//!    (schedule, profit, `λ`, dual objective, upper bound): the resumed
//!    greedy MIS/raise rounds are the exact rounds the cold run would
//!    have executed.
//!
//! The round budget of the randomized sweep can be forced with the
//! `NETSCHED_FORCE_DEADLINE_ROUNDS` environment variable (the CI
//! fault-injection leg sets it to exercise hard cuts).

mod common;

use std::time::Duration;

use common::{to_events, ChurnCase, ChurnCases, ChurnShape, Mirror};
use netsched_core::{AlgorithmConfig, Budget, CertificateQuality, Scheduler};
use netsched_service::{
    AdmissionClass, BudgetSpec, DemandTicket, ResolveMode, Service, ServiceError, ServicePolicy,
    ServiceSession,
};
use proptest::prelude::*;

/// The round budget the CI fault leg forces on the randomized sweep.
fn forced_rounds() -> Option<u64> {
    std::env::var("NETSCHED_FORCE_DEADLINE_ROUNDS")
        .ok()
        .and_then(|raw| raw.parse().ok())
}

fn warm_session(case: &ChurnCase, config: AlgorithmConfig) -> ServiceSession {
    match case.shape {
        ChurnShape::Line => ServiceSession::for_line(case.line_problem(), config),
        ChurnShape::Tree => ServiceSession::for_tree(case.tree_problem(), config),
    }
    .with_resolve_mode(ResolveMode::Warm)
}

/// Replays a churn case with every epoch cut at `rounds` MIS rounds,
/// asserting the anytime contract per epoch, then reconverges with one
/// undeadlined empty step.
fn check_anytime(case: &ChurnCase, rounds: u64) {
    let config = AlgorithmConfig::deterministic(0.1);
    let rounds = forced_rounds().unwrap_or(rounds);
    let mut session = warm_session(case, config);
    let mut mirror = match case.shape {
        ChurnShape::Line => Mirror::for_line(case.line_problem()),
        ChurnShape::Tree => Mirror::for_tree(case.tree_problem()),
    };
    let mut tickets: Vec<DemandTicket> = session.live_tickets();
    let mut next_arrival = tickets.len();
    let mut last_truncated_lambda: Option<f64> = None;

    for (epoch, batch) in case.trace.batches.iter().enumerate() {
        let events = to_events(batch, &tickets);
        let delta = session
            .step_with_deadline(&events, &Budget::rounds(rounds))
            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
        tickets.extend(delta.tickets.iter().copied());
        mirror.apply(batch, &mut next_arrival);

        let ours = session.last_solution().expect("stepped sessions solved");
        // 1. Feasibility and a valid (possibly weaker) bound, cut or not.
        ours.verify(session.universe())
            .unwrap_or_else(|e| panic!("epoch {epoch}: cut schedule failed verification: {e}"));
        assert!(
            ours.diagnostics.optimum_upper_bound + 1e-9 >= ours.profit,
            "epoch {epoch}: upper bound {} below own profit {}",
            ours.diagnostics.optimum_upper_bound,
            ours.profit
        );
        // 2. Truncation is visible and consistent with the carried flag.
        assert_eq!(
            delta.stats.quality.is_truncated(),
            session.anytime_pending(),
            "epoch {epoch}: stats/pending disagree"
        );
        last_truncated_lambda = delta
            .stats
            .quality
            .is_truncated()
            .then_some(ours.diagnostics.lambda);
    }

    // 3. One undeadlined (empty) step finishes the carried work.
    let delta = session.step(&[]).expect("reconvergence step");
    assert!(
        !session.anytime_pending(),
        "work still pending after resume"
    );
    assert_eq!(delta.stats.quality, CertificateQuality::Full);
    let ours = session.last_solution().expect("solved");
    ours.verify(session.universe())
        .expect("converged schedule feasible");
    if session.live_demands() > 0 {
        assert!(
            ours.diagnostics.lambda >= 1.0 - config.epsilon - 1e-6,
            "converged λ = {} below 1 − ε",
            ours.diagnostics.lambda
        );
    }
    if let Some(truncated) = last_truncated_lambda {
        // λ is monotone between the cut and the resume (no churn between).
        assert!(
            truncated <= ours.diagnostics.lambda + 1e-9,
            "truncated λ = {truncated} exceeds converged λ = {}",
            ours.diagnostics.lambda
        );
    }
    let rebuilt = mirror.rebuild();
    if let (Some(ratio), Some(guarantee)) =
        (ours.certified_ratio(), rebuilt.guarantee(config.epsilon))
    {
        assert!(
            ratio <= guarantee + 1e-6,
            "converged certified ratio {ratio} exceeds the {guarantee} guarantee"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn random_line_traces_satisfy_the_anytime_contract(
        case in ChurnCases { shape: ChurnShape::Line },
        rounds in 0u64..6,
    ) {
        check_anytime(&case, rounds);
    }

    #[test]
    fn random_tree_traces_satisfy_the_anytime_contract(
        case in ChurnCases { shape: ChurnShape::Tree },
        rounds in 0u64..6,
    ) {
        check_anytime(&case, rounds);
    }
}

#[test]
fn deadline_cut_epochs_resume_to_the_exact_cold_solve() {
    // 4. Deterministic exactness: for any round budget, cut + undeadlined
    //    resume equals the uninterrupted cold solve bit for bit.
    let (problem, _) = common::line_trace(3, 24, 7, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let reference = Scheduler::for_line(&problem).solve(&config);
    let mut saw_truncated = false;
    for k in [0u64, 1, 2, 4, 8, 64] {
        let mut session =
            ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
        let cut = session
            .step_with_deadline(&[], &Budget::rounds(k))
            .unwrap_or_else(|e| panic!("budget {k}: {e}"));
        if cut.stats.quality.is_truncated() {
            saw_truncated = true;
            assert!(session.anytime_pending());
            let partial = session.last_solution().unwrap();
            partial.verify(session.universe()).unwrap();
            assert!(partial.diagnostics.lambda <= reference.diagnostics.lambda + 1e-9);
        }
        let resumed = session
            .step(&[])
            .unwrap_or_else(|e| panic!("resume {k}: {e}"));
        assert_eq!(resumed.stats.quality, CertificateQuality::Full);
        let ours = session.last_solution().unwrap();
        assert_eq!(ours.selected, reference.selected, "budget {k}: schedule");
        assert_eq!(ours.profit, reference.profit, "budget {k}: profit");
        assert_eq!(
            ours.diagnostics.lambda, reference.diagnostics.lambda,
            "budget {k}: λ"
        );
        assert_eq!(
            ours.diagnostics.dual_objective, reference.diagnostics.dual_objective,
            "budget {k}: dual objective"
        );
        assert_eq!(
            ours.diagnostics.optimum_upper_bound, reference.diagnostics.optimum_upper_bound,
            "budget {k}: upper bound"
        );
    }
    assert!(
        saw_truncated,
        "no budget in the sweep actually cut the solve"
    );
}

#[test]
fn an_expired_wall_clock_deadline_still_yields_a_feasible_epoch() {
    let (problem, _) = common::line_trace(2, 16, 3, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session =
        ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
    // A zero-duration deadline has elapsed before the first round.
    let delta = session
        .step_with_deadline(&[], &Budget::deadline(Duration::ZERO))
        .unwrap();
    assert!(delta.stats.quality.is_truncated());
    let ours = session.last_solution().unwrap();
    ours.verify(session.universe()).unwrap();
    assert!(ours.diagnostics.optimum_upper_bound + 1e-9 >= ours.profit);
    // The certificate converges once the deadline is lifted.
    let resumed = session.step(&[]).unwrap();
    assert_eq!(resumed.stats.quality, CertificateQuality::Full);
    assert!(session.last_solution().unwrap().diagnostics.lambda >= 1.0 - config.epsilon - 1e-6);
}

#[test]
fn bounded_submit_queues_reject_with_overloaded_backpressure() {
    let (problem, _) = common::line_trace(2, 12, 5, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let session = ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
    let service = Service::with_policy(
        session,
        ServicePolicy {
            max_queued: 1,
            latency_budget: BudgetSpec::Rounds(2),
            ..ServicePolicy::default()
        },
    );
    // First submission occupies the queue's single slot (nothing polls
    // it yet, so it stays queued).
    let first = service
        .submit_with_class(vec![], AdmissionClass::LatencySensitive)
        .expect("first submission fits");
    // The second bounces with a drain hint instead of growing the queue.
    match service.submit(vec![]) {
        Err(ServiceError::Overloaded { retry_after_epochs }) => {
            assert!(retry_after_epochs >= 1);
        }
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got an accepted submission"),
    }
    // Draining the queue frees the slot; the latency-sensitive epoch ran
    // under the policy budget and the service stays usable.
    let delta = netsched_service::block_on(first).expect("queued epoch serves");
    assert_eq!(delta.epoch, 1);
    let second = service.submit(vec![]).expect("slot freed after drain");
    assert_eq!(netsched_service::block_on(second).unwrap().epoch, 2);
}
