//! Shared machinery of the root differential suites
//! (`tests/dynamic_equivalence.rs`, `tests/warm_equivalence.rs`):
//!
//! * [`Mirror`] / [`RebuiltProblem`] — a from-scratch mirror of a serving
//!   session's live demand set, rebuilt and re-solved after every epoch;
//! * [`check_trace`] — the **byte-equivalence** driver (Cold sessions must
//!   match a fresh `Scheduler` bit for bit);
//! * [`TraceOracle`] — the **certificate-equivalence** driver (Warm
//!   sessions must verify their dual certificate within the solver's
//!   guarantee every epoch, against a cold reference solve);
//! * [`ChurnCases`] — a proptest [`Strategy`] whose value is the
//!   [`EventTrace`] itself (plus the fixed base problem), so failing
//!   churn traces **shrink to minimal event sequences** instead of
//!   regenerating wholesale from a seed.

#![allow(dead_code)]

use netsched_core::{AlgorithmConfig, Scheduler, Solution};
use netsched_distrib::ConflictGraph;
use netsched_graph::{InstanceId, LineProblem, NetworkId, TreeProblem, VertexId};
use netsched_service::{DemandEvent, DemandRequest, DemandTicket, ScheduleDelta, ServiceSession};
use netsched_workloads::{
    many_networks_line, many_networks_tree, poisson_arrivals_line, poisson_arrivals_tree,
    ChurnSpec, EventTrace, HeightDistribution, TraceEvent,
};
use proptest::{Strategy, TestRng};
use rayon::ThreadPoolBuilder;

// ---------------------------------------------------------------------
// Thread-count control
// ---------------------------------------------------------------------

/// Runs `f` under a global rayon pool of `n` workers (0 = default).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(n).build_global().ok();
    let out = f();
    ThreadPoolBuilder::new().num_threads(0).build_global().ok();
    out
}

// ---------------------------------------------------------------------
// Byte-level equality helpers
// ---------------------------------------------------------------------

/// Byte-level equality of the incremental merged CSR and the flat build.
pub fn assert_same_graph(a: &ConflictGraph, b: &ConflictGraph, label: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{label}: vertex count");
    assert_eq!(a.num_edges(), b.num_edges(), "{label}: edge count");
    for v in 0..a.num_vertices() {
        let d = InstanceId::new(v);
        assert_eq!(a.neighbors(d), b.neighbors(d), "{label}: adjacency of {d}");
    }
}

/// Exact equality of everything the solution certifies.
pub fn assert_same_solution(a: &Solution, b: &Solution, label: &str) {
    assert_eq!(a.selected, b.selected, "{label}: schedule");
    assert_eq!(a.raised_instances, b.raised_instances, "{label}: raised");
    assert_eq!(a.profit, b.profit, "{label}: profit");
    let (da, db) = (a.diagnostics, b.diagnostics);
    assert_eq!(da.lambda, db.lambda, "{label}: lambda");
    assert_eq!(da.dual_objective, db.dual_objective, "{label}: dual");
    assert_eq!(da.steps, db.steps, "{label}: steps");
    assert_eq!(
        da.optimum_upper_bound, db.optimum_upper_bound,
        "{label}: upper bound"
    );
}

// ---------------------------------------------------------------------
// From-scratch mirror of a session's live demand set
// ---------------------------------------------------------------------

/// A from-scratch mirror of the live demand set, driven by the same trace
/// events the session consumes. Tracks demands by global arrival index.
pub enum Mirror {
    /// Mirror of a tree-shaped session.
    Tree {
        /// The demand-free base topology.
        base: TreeProblem,
        /// Live demands: `(global arrival index, arrival event)`.
        live: Vec<(usize, TraceEvent)>,
    },
    /// Mirror of a line-shaped session.
    Line {
        /// The demand-free base topology.
        base: LineProblem,
        /// Live demands: `(global arrival index, arrival event)`.
        live: Vec<(usize, TraceEvent)>,
    },
}

impl Mirror {
    pub fn for_tree(problem: &TreeProblem) -> Self {
        let mut base = TreeProblem::new(problem.num_vertices());
        for t in 0..problem.num_networks() {
            let network = NetworkId::new(t);
            let edges = problem.network(network).edges().map(|(_, uv)| uv).collect();
            let id = base.add_network(edges).unwrap();
            for (e, &cap) in problem.capacities(network).iter().enumerate() {
                if (cap - 1.0).abs() > f64::EPSILON {
                    base.set_capacity(id, e, cap).unwrap();
                }
            }
        }
        let live = problem
            .demands()
            .iter()
            .map(|d| {
                (
                    d.id.index(),
                    TraceEvent::ArriveTree {
                        u: d.u,
                        v: d.v,
                        profit: d.profit,
                        height: d.height,
                        access: problem.access(d.id).to_vec(),
                    },
                )
            })
            .collect();
        Mirror::Tree { base, live }
    }

    pub fn for_line(problem: &LineProblem) -> Self {
        let base = LineProblem::new(problem.timeslots(), problem.num_resources());
        let live = problem
            .demands()
            .iter()
            .map(|d| {
                (
                    d.id.index(),
                    TraceEvent::ArriveLine {
                        release: d.release,
                        deadline: d.deadline,
                        processing: d.processing,
                        profit: d.profit,
                        height: d.height,
                        access: problem.access(d.id).to_vec(),
                    },
                )
            })
            .collect();
        Mirror::Line { base, live }
    }

    pub fn apply(&mut self, batch: &[TraceEvent], next_arrival: &mut usize) {
        let live = match self {
            Mirror::Tree { live, .. } | Mirror::Line { live, .. } => live,
        };
        for event in batch {
            match event {
                TraceEvent::Expire { arrival } => {
                    let pos = live
                        .iter()
                        .position(|(a, _)| a == arrival)
                        .expect("mirror expires a live arrival");
                    live.remove(pos);
                }
                arrive => {
                    live.push((*next_arrival, arrive.clone()));
                    *next_arrival += 1;
                }
            }
        }
    }

    /// The surviving demand set as a fresh problem, demands in arrival
    /// order — exactly the from-scratch rebuild the invariant names.
    pub fn rebuild(&self) -> RebuiltProblem {
        match self {
            Mirror::Tree { base, live } => {
                let mut p = base.clone();
                for (_, event) in live {
                    if let TraceEvent::ArriveTree {
                        u,
                        v,
                        profit,
                        height,
                        access,
                    } = event
                    {
                        p.add_demand(*u, *v, *profit, *height, access.clone())
                            .unwrap();
                    }
                }
                RebuiltProblem::Tree(p)
            }
            Mirror::Line { base, live } => {
                let mut p = base.clone();
                for (_, event) in live {
                    if let TraceEvent::ArriveLine {
                        release,
                        deadline,
                        processing,
                        profit,
                        height,
                        access,
                    } = event
                    {
                        p.add_demand(
                            *release,
                            *deadline,
                            *processing,
                            *profit,
                            *height,
                            access.clone(),
                        )
                        .unwrap();
                    }
                }
                RebuiltProblem::Line(p)
            }
        }
    }
}

/// The surviving demand set, rebuilt from scratch after one epoch.
pub enum RebuiltProblem {
    Tree(TreeProblem),
    Line(LineProblem),
}

impl RebuiltProblem {
    /// From-scratch reference solve + flat conflict build.
    pub fn solve(&self, config: &AlgorithmConfig) -> (Solution, ConflictGraph) {
        match self {
            RebuiltProblem::Tree(p) => {
                let flat = ConflictGraph::build(&p.universe());
                (Scheduler::for_tree(p).solve(config), flat)
            }
            RebuiltProblem::Line(p) => {
                let flat = ConflictGraph::build(&p.universe());
                (Scheduler::for_line(p).solve(config), flat)
            }
        }
    }

    /// The worst-case guarantee of the paper solver the dispatch table
    /// selects for the current (surviving) instance shape.
    pub fn guarantee(&self, epsilon: f64) -> Option<f64> {
        match self {
            RebuiltProblem::Tree(p) => Scheduler::for_tree(p).auto_solver().guarantee(epsilon),
            RebuiltProblem::Line(p) => Scheduler::for_line(p).auto_solver().guarantee(epsilon),
        }
    }
}

/// Converts one trace batch into session events through the
/// arrival-index → ticket table.
pub fn to_events(batch: &[TraceEvent], tickets: &[DemandTicket]) -> Vec<DemandEvent> {
    batch
        .iter()
        .map(|event| match event {
            TraceEvent::ArriveTree {
                u,
                v,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(DemandRequest::Tree {
                u: *u,
                v: *v,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::ArriveLine {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(DemandRequest::Line {
                release: *release,
                deadline: *deadline,
                processing: *processing,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Byte-equivalence driver (Cold sessions)
// ---------------------------------------------------------------------

/// Replays a trace epoch by epoch, asserting the **byte-equivalence**
/// invariant after every epoch: merged CSR byte-identical to the flat
/// build of the rebuilt universe, schedule and certificate equal to a
/// from-scratch `Scheduler` solve. Sessions passed here must be in
/// `ResolveMode::Cold` (warm sessions deliberately relax this contract —
/// use [`TraceOracle`] for those).
pub fn check_trace(
    mut session: ServiceSession,
    mut mirror: Mirror,
    trace: &EventTrace,
    config: &AlgorithmConfig,
    label: &str,
) {
    let mut tickets: Vec<DemandTicket> = session.live_tickets();
    let mut next_arrival = tickets.len();
    for (epoch, batch) in trace.batches.iter().enumerate() {
        let events = to_events(batch, &tickets);
        let delta = session
            .step(&events)
            .unwrap_or_else(|e| panic!("{label} epoch {epoch}: {e}"));
        tickets.extend(delta.tickets.iter().copied());
        mirror.apply(batch, &mut next_arrival);

        let label = format!("{label} epoch {epoch}");
        let rebuilt = mirror.rebuild();
        let (reference, flat) = rebuilt.solve(config);
        assert_same_graph(&flat, &session.conflict().merged(), &label);
        let ours = session.last_solution().expect("stepped sessions solved");
        assert_same_solution(&reference, ours, &label);
        assert_eq!(delta.profit, reference.profit, "{label}: delta profit");
        assert_eq!(
            delta.stats.live_demands,
            session.live_demands(),
            "{label}: live count"
        );
        // The standing schedule and the solution agree.
        assert_eq!(session.schedule().len(), ours.selected.len(), "{label}");
    }
}

// ---------------------------------------------------------------------
// Certificate-equivalence oracle (Warm sessions)
// ---------------------------------------------------------------------

/// The differential solve-equivalence oracle of the warm harness: replays
/// a trace through a (Warm) session while maintaining the from-scratch
/// mirror, and asserts the **relaxed equivalence contract** per epoch:
///
/// 1. the session's schedule passes feasibility verification against its
///    own universe (capacities + one instance per demand + profit),
/// 2. the dual certificate verifies: `λ ≥ 1 − ε`,
/// 3. the certified ratio stays within the auto-selected paper solver's
///    worst-case guarantee for the surviving instance shape,
/// 4. the achieved `λ` is within a fixed factor (0.5) of the cold
///    reference's `λ`,
/// 5. the warm optimum upper bound really upper-bounds the cold reference
///    profit (both bound the same OPT from opposite sides), and
/// 6. the delta's bookkeeping is consistent with the standing schedule.
pub struct TraceOracle {
    mirror: Mirror,
    config: AlgorithmConfig,
    tickets: Vec<DemandTicket>,
    next_arrival: usize,
}

impl TraceOracle {
    /// An oracle over a session's initial problem (the mirror must be
    /// built from the same problem the session was seeded with).
    pub fn new(mirror: Mirror, config: AlgorithmConfig) -> Self {
        let initial = match &mirror {
            Mirror::Tree { live, .. } | Mirror::Line { live, .. } => live.len(),
        };
        Self {
            mirror,
            config,
            tickets: (0..initial as u64).map(DemandTicket).collect(),
            next_arrival: initial,
        }
    }

    /// Replays the whole trace, checking the contract after every epoch.
    pub fn replay(&mut self, session: &mut ServiceSession, trace: &EventTrace, label: &str) {
        for (epoch, batch) in trace.batches.iter().enumerate() {
            let events = to_events(batch, &self.tickets);
            let delta = session
                .step(&events)
                .unwrap_or_else(|e| panic!("{label} epoch {epoch}: {e}"));
            self.check_epoch(session, batch, &delta, &format!("{label} epoch {epoch}"));
        }
    }

    /// Advances the mirror past `batch` and asserts the relaxed contract
    /// for the session state `delta` left behind.
    pub fn check_epoch(
        &mut self,
        session: &ServiceSession,
        batch: &[TraceEvent],
        delta: &ScheduleDelta,
        label: &str,
    ) {
        self.tickets.extend(delta.tickets.iter().copied());
        self.mirror.apply(batch, &mut self.next_arrival);
        let rebuilt = self.mirror.rebuild();
        let (reference, _) = rebuilt.solve(&self.config);
        let guarantee = rebuilt.guarantee(self.config.epsilon);

        let ours = session.last_solution().expect("stepped sessions solved");
        // 1. Admitted-set feasibility (+ reported profit).
        ours.verify(session.universe())
            .unwrap_or_else(|e| panic!("{label}: warm schedule failed verification: {e}"));
        if session.live_demands() > 0 {
            // 2. The certificate verifies: λ reached 1 − ε.
            assert!(
                ours.diagnostics.lambda >= 1.0 - self.config.epsilon - 1e-6,
                "{label}: warm λ = {} below 1 − ε",
                ours.diagnostics.lambda
            );
            // 4. λ within a fixed factor of the cold λ.
            assert!(
                ours.diagnostics.lambda >= 0.5 * reference.diagnostics.lambda,
                "{label}: warm λ = {} not within factor 2 of cold λ = {}",
                ours.diagnostics.lambda,
                reference.diagnostics.lambda
            );
        }
        // 3. Certified ratio within the solver's worst-case guarantee.
        if let (Some(ratio), Some(guarantee)) = (ours.certified_ratio(), guarantee) {
            assert!(
                ratio <= guarantee + 1e-6,
                "{label}: warm certified ratio {ratio} exceeds the {guarantee} guarantee"
            );
        }
        // 5. The warm upper bound really bounds OPT: it must dominate the
        //    cold reference profit (a feasible solution's profit ≤ OPT).
        assert!(
            ours.diagnostics.optimum_upper_bound + 1e-6 >= reference.profit,
            "{label}: warm upper bound {} below the cold profit {}",
            ours.diagnostics.optimum_upper_bound,
            reference.profit
        );
        // 6. Delta bookkeeping consistency.
        assert_eq!(delta.profit, ours.profit, "{label}: delta profit");
        assert_eq!(
            session.schedule().len(),
            ours.selected.len(),
            "{label}: standing schedule size"
        );
        assert_eq!(
            delta.stats.live_demands,
            session.live_demands(),
            "{label}: live count"
        );
    }
}

// ---------------------------------------------------------------------
// Trace generators shared by both suites
// ---------------------------------------------------------------------

pub fn line_trace(
    networks: usize,
    demands: usize,
    seed: u64,
    churn: f64,
) -> (LineProblem, EventTrace) {
    line_trace_with_heights(networks, demands, seed, churn, HeightDistribution::Unit)
}

pub fn line_trace_with_heights(
    networks: usize,
    demands: usize,
    seed: u64,
    churn: f64,
    heights: HeightDistribution,
) -> (LineProblem, EventTrace) {
    let mut base = many_networks_line(networks, demands, seed);
    base.heights = heights;
    let trace = poisson_arrivals_line(
        &base,
        &ChurnSpec {
            epochs: 8,
            churn,
            focus: 2,
            seed: seed ^ 0xD15EA5E,
        },
    );
    (base.build().unwrap(), trace)
}

pub fn tree_trace(
    networks: usize,
    demands: usize,
    seed: u64,
    churn: f64,
    heights: HeightDistribution,
) -> (TreeProblem, EventTrace) {
    let mut base = many_networks_tree(networks, demands, seed);
    base.heights = heights;
    let trace = poisson_arrivals_tree(
        &base,
        &ChurnSpec {
            epochs: 8,
            churn,
            focus: 2,
            seed: seed ^ 0xFEED,
        },
    );
    (base.build().unwrap(), trace)
}

// ---------------------------------------------------------------------
// Shrinkable churn-case strategy
// ---------------------------------------------------------------------

/// The network shape of a generated churn case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnShape {
    Line,
    Tree,
}

/// The base problem of a churn case.
#[derive(Clone)]
pub enum CaseProblem {
    Line(LineProblem),
    Tree(TreeProblem),
}

/// One generated churn case: a fixed base problem plus the [`EventTrace`]
/// the proptest strategy shrinks. The trace — not a regeneration seed —
/// **is** the strategy value, so failures minimize to short event
/// sequences: shrink candidates truncate the trace, drop whole batches,
/// and drop single events (renumbering the arrival indices later expiries
/// reference so every candidate stays valid).
#[derive(Clone)]
pub struct ChurnCase {
    pub shape: ChurnShape,
    pub networks: usize,
    pub demands: usize,
    pub seed: u64,
    /// Percentage of wide (`h > 1/2`) arrivals; 100 = unit heights.
    pub wide_pct: u32,
    pub problem: CaseProblem,
    pub trace: EventTrace,
}

impl ChurnCase {
    pub fn line_problem(&self) -> &LineProblem {
        match &self.problem {
            CaseProblem::Line(p) => p,
            CaseProblem::Tree(_) => panic!("tree case in a line test"),
        }
    }

    pub fn tree_problem(&self) -> &TreeProblem {
        match &self.problem {
            CaseProblem::Tree(p) => p,
            CaseProblem::Line(_) => panic!("line case in a tree test"),
        }
    }
}

impl std::fmt::Debug for ChurnCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChurnCase")
            .field("shape", &self.shape)
            .field("networks", &self.networks)
            .field("demands", &self.demands)
            .field("seed", &self.seed)
            .field("wide_pct", &self.wide_pct)
            .field("trace", &self.trace.batches)
            .finish()
    }
}

/// Uniform draw from `lo..=hi`.
fn draw(rng: &mut TestRng, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    lo + rng.next_u64() % (hi - lo + 1)
}

/// Proptest strategy generating [`ChurnCase`]s of one shape; the value's
/// trace shrinks event-wise (see [`ChurnCase`]).
#[derive(Debug, Clone, Copy)]
pub struct ChurnCases {
    pub shape: ChurnShape,
}

impl ChurnCases {
    fn sample_height(&self, rng: &mut TestRng, wide_pct: u32) -> f64 {
        if draw(rng, 0, 99) < wide_pct as u64 {
            1.0
        } else {
            0.1 + 0.05 * draw(rng, 0, 8) as f64
        }
    }

    fn sample_access(&self, rng: &mut TestRng, networks: usize) -> Vec<NetworkId> {
        let mut access: Vec<NetworkId> = (0..networks)
            .filter(|_| rng.next_u64().is_multiple_of(2))
            .map(NetworkId::new)
            .collect();
        if access.is_empty() {
            access.push(NetworkId::new(draw(rng, 0, networks as u64 - 1) as usize));
        }
        access
    }
}

impl Strategy for ChurnCases {
    type Value = ChurnCase;

    fn sample(&self, rng: &mut TestRng) -> ChurnCase {
        let networks = draw(rng, 2, 4) as usize;
        let demands = draw(rng, 10, 20) as usize;
        let seed = rng.next_u64();
        let wide_pct = if draw(rng, 0, 2) == 0 {
            100
        } else {
            draw(rng, 0, 100) as u32
        };
        let (problem, timeslots, vertices) = match self.shape {
            ChurnShape::Line => {
                let mut base = many_networks_line(networks, demands, seed);
                if wide_pct < 100 {
                    base.heights = HeightDistribution::Mixed {
                        wide_fraction: wide_pct as f64 / 100.0,
                        min_narrow: 0.1,
                    };
                }
                let timeslots = base.timeslots;
                (CaseProblem::Line(base.build().unwrap()), timeslots, 0)
            }
            ChurnShape::Tree => {
                let mut base = many_networks_tree(networks, demands, seed);
                if wide_pct < 100 {
                    base.heights = HeightDistribution::Mixed {
                        wide_fraction: wide_pct as f64 / 100.0,
                        min_narrow: 0.1,
                    };
                }
                let vertices = base.vertices;
                (CaseProblem::Tree(base.build().unwrap()), 0, vertices)
            }
        };

        // Arbitrary-derived events with validity filtering: expiries only
        // name live arrivals from *earlier* batches (a same-batch arrival
        // has no ticket yet), windows fit the timeline, routes are proper.
        let mut live: Vec<usize> = (0..demands).collect();
        let mut next_arrival = demands;
        let epochs = draw(rng, 3, 7) as usize;
        let mut batches = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let events = draw(rng, 0, 5) as usize;
            let mut batch = Vec::with_capacity(events);
            let mut batch_arrivals: Vec<usize> = Vec::new();
            for _ in 0..events {
                if !live.is_empty() && draw(rng, 0, 99) < 45 {
                    let pos = draw(rng, 0, live.len() as u64 - 1) as usize;
                    batch.push(TraceEvent::Expire {
                        arrival: live.remove(pos),
                    });
                    continue;
                }
                let profit = 1.0 + draw(rng, 0, 80) as f64 / 10.0;
                let height = self.sample_height(rng, wide_pct);
                let access = self.sample_access(rng, networks);
                match self.shape {
                    ChurnShape::Line => {
                        let len = draw(rng, 1, 8.min(timeslots as u64));
                        let release = draw(rng, 0, timeslots as u64 - len);
                        let slack = draw(rng, 0, (timeslots as u64 - release - len).min(4));
                        batch.push(TraceEvent::ArriveLine {
                            release: release as u32,
                            deadline: (release + len - 1 + slack) as u32,
                            processing: len as u32,
                            profit,
                            height,
                            access,
                        });
                    }
                    ChurnShape::Tree => {
                        let u = draw(rng, 0, vertices as u64 - 1) as usize;
                        let mut v = draw(rng, 0, vertices as u64 - 1) as usize;
                        if v == u {
                            v = (v + 1) % vertices;
                        }
                        batch.push(TraceEvent::ArriveTree {
                            u: VertexId::new(u),
                            v: VertexId::new(v),
                            profit,
                            height,
                            access,
                        });
                    }
                }
                batch_arrivals.push(next_arrival);
                next_arrival += 1;
            }
            live.extend(batch_arrivals);
            batches.push(batch);
        }
        ChurnCase {
            shape: self.shape,
            networks,
            demands,
            seed,
            wide_pct,
            problem,
            trace: EventTrace { batches },
        }
    }

    fn shrink(&self, value: &ChurnCase) -> Vec<ChurnCase> {
        let batches = &value.trace.batches;
        let n = batches.len();
        let mut candidates: Vec<EventTrace> = Vec::new();
        // Most aggressive first: prefix truncations (always valid).
        if n > 1 {
            candidates.push(EventTrace {
                batches: batches[..n / 2].to_vec(),
            });
            candidates.push(EventTrace {
                batches: batches[..n - 1].to_vec(),
            });
        } else if n == 1 && !batches[0].is_empty() {
            candidates.push(EventTrace {
                batches: Vec::new(),
            });
        }
        // Drop whole batches, then single events (renumbered).
        for (b, batch) in batches.iter().enumerate() {
            if !batch.is_empty() {
                candidates.push(drop_events(&value.trace, value.demands, |bi, _| bi == b));
            }
        }
        for (b, batch) in batches.iter().enumerate() {
            if batch.len() > 1 {
                for e in 0..batch.len() {
                    candidates.push(drop_events(&value.trace, value.demands, |bi, ei| {
                        bi == b && ei == e
                    }));
                }
            }
        }
        candidates
            .into_iter()
            .filter(|trace| trace != &value.trace)
            .map(|trace| ChurnCase {
                trace,
                ..value.clone()
            })
            .collect()
    }
}

/// Removes every event `remove(batch, event)` selects from a trace,
/// keeping the result valid: expiries of removed arrivals are dropped and
/// the arrival indices later expiries reference are renumbered past the
/// holes (initial demands `0..initial` keep their indices).
pub fn drop_events(
    trace: &EventTrace,
    initial: usize,
    remove: impl Fn(usize, usize) -> bool,
) -> EventTrace {
    // First pass: the global arrival index of every removed arrival.
    let mut removed_arrivals: Vec<usize> = Vec::new();
    let mut arrival = initial;
    for (bi, batch) in trace.batches.iter().enumerate() {
        for (ei, event) in batch.iter().enumerate() {
            if event.is_arrival() {
                if remove(bi, ei) {
                    removed_arrivals.push(arrival);
                }
                arrival += 1;
            }
        }
    }
    // Old arrival index → new (None = removed).
    let renumber = |old: usize| -> Option<usize> {
        if removed_arrivals.binary_search(&old).is_ok() {
            return None;
        }
        Some(old - removed_arrivals.partition_point(|&r| r < old))
    };
    // Second pass: rebuild the surviving batches.
    let batches = trace
        .batches
        .iter()
        .enumerate()
        .map(|(bi, batch)| {
            batch
                .iter()
                .enumerate()
                .filter(|&(ei, _)| !remove(bi, ei))
                .filter_map(|(_, event)| match event {
                    TraceEvent::Expire { arrival } => {
                        renumber(*arrival).map(|arrival| TraceEvent::Expire { arrival })
                    }
                    arrive => Some(arrive.clone()),
                })
                .collect()
        })
        .collect();
    EventTrace { batches }
}
