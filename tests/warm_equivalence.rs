//! Differential solve-equivalence suite of the warm re-solve engine.
//!
//! `ResolveMode::Warm` deliberately relaxes the byte-equivalence anchor of
//! `tests/dynamic_equivalence.rs` to **certificate-equivalence**: a warm
//! epoch's schedule may differ from a cold solve, but every epoch must
//! carry a verifying dual certificate within the auto-selected solver's
//! worst-case guarantee. The [`common::TraceOracle`] replays every trace
//! twice — once through a Warm `ServiceSession`, once through from-scratch
//! `Scheduler` rebuilds — and asserts per epoch:
//!
//! 1. the warm schedule is feasible against the session universe,
//! 2. the warm certificate verifies (`λ ≥ 1 − ε`),
//! 3. the warm certified ratio stays ≤ the solver's guarantee,
//! 4. the warm `λ` is within a fixed factor of the cold `λ`,
//! 5. the warm optimum upper bound dominates the cold profit (both bound
//!    the same OPT), and
//! 6. the delta bookkeeping matches the standing schedule.
//!
//! The matrix covers 1/2/4 rayon workers, both MIS strategies, and
//! line / tree / mixed-height (split-core) / capacitated instances, via
//! generated Poisson churn traces AND proptest-randomized shrinkable
//! traces. A final section pins the **Cold regression**: a warm-capable
//! session pinned to `ResolveMode::Cold` stays byte-identical to the PR-4
//! behavior (merged CSR bytes, schedule, certificate), so the new mode
//! cannot silently perturb the existing anchor.

mod common;

use common::{
    check_trace, line_trace, line_trace_with_heights, tree_trace, with_threads, ChurnCase,
    ChurnCases, ChurnShape, Mirror, TraceOracle,
};
use netsched_core::AlgorithmConfig;
use netsched_distrib::MisStrategy;
use netsched_graph::{LineProblem, NetworkId, TreeProblem};
use netsched_service::{ResolveMode, ServiceSession};
use netsched_workloads::{EventTrace, HeightDistribution};
use proptest::prelude::*;

fn warm_line(problem: &LineProblem, config: AlgorithmConfig) -> ServiceSession {
    ServiceSession::for_line(problem, config).with_resolve_mode(ResolveMode::Warm)
}

fn warm_tree(problem: &TreeProblem, config: AlgorithmConfig) -> ServiceSession {
    ServiceSession::for_tree(problem, config).with_resolve_mode(ResolveMode::Warm)
}

fn check_warm_line(
    problem: &LineProblem,
    trace: &EventTrace,
    config: AlgorithmConfig,
    label: &str,
) {
    let mut session = warm_line(problem, config);
    let mut oracle = TraceOracle::new(Mirror::for_line(problem), config);
    oracle.replay(&mut session, trace, label);
}

fn check_warm_tree(
    problem: &TreeProblem,
    trace: &EventTrace,
    config: AlgorithmConfig,
    label: &str,
) {
    let mut session = warm_tree(problem, config);
    let mut oracle = TraceOracle::new(Mirror::for_tree(problem), config);
    oracle.replay(&mut session, trace, label);
}

#[test]
fn warm_line_sessions_certify_at_every_thread_count_and_strategy() {
    let (problem, trace) = line_trace(4, 30, 11, 0.2);
    for threads in [1usize, 2, 4] {
        for config in [
            AlgorithmConfig::deterministic(0.1),
            AlgorithmConfig {
                epsilon: 0.1,
                mis: MisStrategy::Luby { seed: 77 },
                seed: 77,
            },
        ] {
            with_threads(threads, || {
                check_warm_line(
                    &problem,
                    &trace,
                    config,
                    &format!("warm-line @ {threads} threads / {:?}", config.mis),
                );
            });
        }
    }
}

#[test]
fn warm_tree_sessions_certify_at_every_thread_count_and_strategy() {
    let (problem, trace) = tree_trace(4, 28, 5, 0.2, HeightDistribution::Unit);
    for threads in [1usize, 2, 4] {
        for config in [
            AlgorithmConfig::deterministic(0.1),
            AlgorithmConfig {
                epsilon: 0.1,
                mis: MisStrategy::Luby { seed: 31 },
                seed: 31,
            },
        ] {
            with_threads(threads, || {
                check_warm_tree(
                    &problem,
                    &trace,
                    config,
                    &format!("warm-tree @ {threads} threads / {:?}", config.mis),
                );
            });
        }
    }
}

#[test]
fn warm_mixed_height_sessions_certify_through_the_split_cores() {
    // Mixed heights route warm sessions through per-half warm states
    // (wide under the unit rule, narrow under the narrow rule) and the
    // Theorem 6.3 / 7.2 combination.
    let (tree, tree_events) = tree_trace(
        3,
        24,
        17,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    check_warm_tree(
        &tree,
        &tree_events,
        AlgorithmConfig::deterministic(0.1),
        "warm-mixed-tree",
    );

    let (line, line_events) = line_trace_with_heights(
        3,
        22,
        29,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    check_warm_line(
        &line,
        &line_events,
        AlgorithmConfig::deterministic(0.1),
        "warm-mixed-line",
    );
}

#[test]
fn warm_capacitated_sessions_certify() {
    // Non-uniform capacities exercise the weighted β/c Fenwick mirror
    // through the warm point-clear path.
    let (mut problem, trace) = tree_trace(3, 20, 23, 0.2, HeightDistribution::Narrow { min: 0.2 });
    for t in 0..problem.num_networks() {
        for e in (0..60).step_by(7) {
            problem
                .set_capacity(NetworkId::new(t), e, 1.5 + (e % 3) as f64 * 0.5)
                .unwrap();
        }
    }
    assert!(!problem.universe().is_uniform_capacity());
    check_warm_tree(
        &problem,
        &trace,
        AlgorithmConfig::deterministic(0.1),
        "warm-capacitated",
    );
}

#[test]
fn warm_epochs_report_their_mode_and_repair_locally() {
    // Sanity on the telemetry: warm epochs flag themselves, and churn
    // focused on few networks keeps most epochs' dirty-shard counts low
    // (the repair locality the engine exploits).
    let (problem, trace) = line_trace(6, 40, 3, 0.1);
    let config = AlgorithmConfig::deterministic(0.15);
    let mut session = warm_line(&problem, config);
    let first = session.step(&[]).unwrap();
    assert!(first.stats.warm_resolve);
    let mut all = session.live_tickets();
    for batch in &trace.batches {
        let events = common::to_events(batch, &all);
        let delta = session.step(&events).unwrap();
        all.extend(delta.tickets.iter().copied());
        assert!(delta.stats.warm_resolve || delta.stats.live_demands == 0);
        assert!(delta.stats.dirty_shards <= delta.stats.num_shards);
        assert!(delta.certificate.optimum_upper_bound + 1e-9 >= delta.profit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_line_traces_stay_certificate_equivalent(
        case in ChurnCases { shape: ChurnShape::Line },
    ) {
        let case: ChurnCase = case;
        check_warm_line(
            case.line_problem(),
            &case.trace,
            AlgorithmConfig::deterministic(0.12),
            "warm-proptest-line",
        );
    }

    #[test]
    fn random_tree_traces_stay_certificate_equivalent(
        case in ChurnCases { shape: ChurnShape::Tree },
    ) {
        let case: ChurnCase = case;
        check_warm_tree(
            case.tree_problem(),
            &case.trace,
            AlgorithmConfig::deterministic(0.12),
            "warm-proptest-tree",
        );
    }
}

// ---------------------------------------------------------------------
// Cold-mode regression pin
// ---------------------------------------------------------------------

#[test]
fn cold_mode_sessions_stay_byte_identical_to_the_pr4_anchor() {
    // A warm-capable session pinned to Cold must not perturb the existing
    // byte-equivalence anchor in any way: merged CSR bytes, schedule and
    // certificate all equal a from-scratch Scheduler, exactly as before
    // the warm engine existed — regardless of the environment default.
    let (line, line_events) = line_trace(4, 26, 47, 0.25);
    let config = AlgorithmConfig::deterministic(0.1);
    let session = ServiceSession::for_line(&line, config).with_resolve_mode(ResolveMode::Cold);
    assert_eq!(session.resolve_mode(), ResolveMode::Cold);
    check_trace(
        session,
        Mirror::for_line(&line),
        &line_events,
        &config,
        "cold-pin-line",
    );

    let (tree, tree_events) = tree_trace(
        3,
        20,
        53,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.6,
            min_narrow: 0.15,
        },
    );
    let session = ServiceSession::for_tree(&tree, config).with_resolve_mode(ResolveMode::Cold);
    check_trace(
        session,
        Mirror::for_tree(&tree),
        &tree_events,
        &config,
        "cold-pin-tree",
    );
}

#[test]
fn warm_and_cold_first_epochs_agree_exactly() {
    // A fresh warm state executes the cold engine's step sequence, so the
    // two modes only diverge once a second epoch resumes persisted duals.
    let (problem, _) = line_trace(4, 24, 61, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut cold = ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Cold);
    let mut warm = warm_line(&problem, config);
    let dc = cold.step(&[]).unwrap();
    let dw = warm.step(&[]).unwrap();
    assert_eq!(dc.profit, dw.profit);
    assert_eq!(dc.admitted, dw.admitted);
    assert_eq!(dc.certificate, dw.certificate);
    common::assert_same_solution(
        cold.last_solution().unwrap(),
        warm.last_solution().unwrap(),
        "first epoch",
    );
}
