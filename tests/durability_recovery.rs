//! Kill-and-recover equivalence suite of the durable serving tier
//! (`netsched-persist`).
//!
//! The contract: a session killed at an **arbitrary epoch** and recovered
//! from its directory (newest valid snapshot + write-ahead log replay
//! through the normal `step` path), then driven through the rest of the
//! trace, must be indistinguishable from the uninterrupted session —
//! **byte-identical** in [`ResolveMode::Cold`] (schedule, certificate,
//! merged conflict CSR), **certificate-equivalent** in
//! [`ResolveMode::Warm`] (feasible schedule, `λ ≥ 1 − ε`, upper bound
//! dominating the uninterrupted profit) — at every thread count.
//!
//! The corruption arm pins the longest-valid-prefix recovery semantics:
//! a truncated tail record, a flipped checksum byte and a zero-length log
//! all recover to the last valid prefix without panicking, with the
//! dropped suffix counted in the [`RestoreReport`].

mod common;

use common::{
    assert_same_graph, assert_same_solution, line_trace, to_events, tree_trace, with_threads,
    ChurnCase, ChurnCases, ChurnShape,
};
use netsched_core::AlgorithmConfig;
use netsched_graph::{LineProblem, TreeProblem};
use netsched_persist::{
    restore, snapshot_path, Durability, DurableSession, PersistConfig, RestoreReport, WAL_FILE,
};
use netsched_service::{wal_record, DemandTicket, ResolveMode, ServiceSession};
use netsched_workloads::framing::{encode_frame, scan_frames, FRAME_HEADER_LEN};
use netsched_workloads::{EventTrace, HeightDistribution};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netsched-durability-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

enum Base {
    Line(LineProblem),
    Tree(TreeProblem),
}

impl Base {
    fn session(&self, config: AlgorithmConfig, mode: ResolveMode) -> ServiceSession {
        match self {
            Base::Line(p) => ServiceSession::for_line(p, config),
            Base::Tree(p) => ServiceSession::for_tree(p, config),
        }
        .with_resolve_mode(mode)
    }

    fn initial_demands(&self) -> usize {
        match self {
            Base::Line(p) => p.demands().len(),
            Base::Tree(p) => p.demands().len(),
        }
    }
}

/// Tickets are assigned sequentially from the initial demand set onward,
/// so the global-arrival-index → ticket table is the identity.
fn ticket_table(base: &Base, trace: &EventTrace) -> Vec<DemandTicket> {
    let arrivals: usize = trace
        .batches
        .iter()
        .flat_map(|b| b.iter())
        .filter(|e| e.is_arrival())
        .count();
    (0..(base.initial_demands() + arrivals) as u64)
        .map(DemandTicket)
        .collect()
}

/// Replays `trace.batches[range]` through a plain session.
fn drive(
    session: &mut ServiceSession,
    trace: &EventTrace,
    range: std::ops::Range<usize>,
    tickets: &[DemandTicket],
) {
    for batch in &trace.batches[range] {
        let events = to_events(batch, tickets);
        session.step(&events).expect("trace replays");
    }
}

/// The kill-and-recover driver: runs the uninterrupted reference, runs a
/// durable twin killed after `kill_at` epochs, recovers it, drives it
/// through the rest of the trace and asserts the mode's equivalence
/// contract. Returns the recovery's accounting for extra assertions.
fn check_kill_and_recover(
    base: &Base,
    trace: &EventTrace,
    config: AlgorithmConfig,
    mode: ResolveMode,
    kill_at: usize,
    persist: PersistConfig,
    label: &str,
) -> RestoreReport {
    let tickets = ticket_table(base, trace);

    // The uninterrupted run.
    let mut reference = base.session(config, mode);
    drive(&mut reference, trace, 0..trace.batches.len(), &tickets);

    // The durable twin, killed after `kill_at` epochs.
    let dir = temp_dir();
    let mut durable =
        DurableSession::create(&dir, base.session(config, mode), persist).expect("create");
    for batch in &trace.batches[..kill_at] {
        let events = to_events(batch, &tickets);
        durable
            .step(&events)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    drop(durable); // the kill

    let (mut recovered, report) =
        DurableSession::recover(&dir, persist).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(
        report.final_epoch, kill_at as u64,
        "{label}: recovered epoch"
    );
    assert_eq!(
        report.dropped_records, 0,
        "{label}: clean log drops nothing"
    );
    assert_eq!(report.dropped_snapshots, 0, "{label}: snapshots all valid");
    assert_eq!(
        report.snapshot_epoch + report.replayed_epochs,
        kill_at as u64,
        "{label}: snapshot + replay covers the killed history"
    );

    // Resume through the rest of the trace, then compare.
    for batch in &trace.batches[kill_at..] {
        let events = to_events(batch, &tickets);
        recovered
            .step(&events)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    let recovered = recovered.into_session();

    // The incremental structures are mode-independent: live set, epoch
    // counter and merged conflict CSR must match exactly in both modes.
    assert_eq!(recovered.epoch(), reference.epoch(), "{label}: epoch");
    assert_eq!(
        recovered.live_tickets(),
        reference.live_tickets(),
        "{label}: live tickets"
    );
    assert_same_graph(
        &reference.conflict().merged(),
        &recovered.conflict().merged(),
        label,
    );
    match mode {
        ResolveMode::Cold => {
            // Byte-identical: schedule, certificate, standing state.
            let (ours, theirs) = (recovered.last_solution(), reference.last_solution());
            match (ours, theirs) {
                (Some(ours), Some(theirs)) => assert_same_solution(theirs, ours, label),
                (None, None) => {}
                _ => panic!("{label}: one side solved, the other did not"),
            }
            assert_eq!(
                recovered.schedule(),
                reference.schedule(),
                "{label}: schedule"
            );
            assert_eq!(recovered.profit(), reference.profit(), "{label}: profit");
        }
        ResolveMode::Warm => {
            // Certificate-equivalent: the recovered schedule is feasible
            // and carries a verifying certificate; both sessions' upper
            // bounds dominate each other's (feasible) profit.
            if let Some(ours) = recovered.last_solution() {
                ours.verify(recovered.universe())
                    .unwrap_or_else(|e| panic!("{label}: recovered schedule infeasible: {e}"));
                if recovered.live_demands() > 0 {
                    assert!(
                        ours.diagnostics.lambda >= 1.0 - config.epsilon - 1e-6,
                        "{label}: recovered λ = {} below 1 − ε",
                        ours.diagnostics.lambda
                    );
                }
                assert!(
                    ours.diagnostics.optimum_upper_bound + 1e-6 >= reference.profit(),
                    "{label}: recovered upper bound {} below the uninterrupted profit {}",
                    ours.diagnostics.optimum_upper_bound,
                    reference.profit()
                );
            }
            if let Some(theirs) = reference.last_solution() {
                assert!(
                    theirs.diagnostics.optimum_upper_bound + 1e-6 >= recovered.profit(),
                    "{label}: uninterrupted upper bound {} below the recovered profit {}",
                    theirs.diagnostics.optimum_upper_bound,
                    recovered.profit()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

// ---------------------------------------------------------------------
// Kill-and-recover equivalence: generated traces
// ---------------------------------------------------------------------

#[test]
fn cold_line_recovery_is_byte_identical_at_every_thread_count() {
    let (problem, trace) = line_trace(4, 24, 11, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    for threads in [1usize, 2, 4] {
        with_threads(threads, || {
            for kill_at in [1, epochs / 2, epochs] {
                check_kill_and_recover(
                    &base,
                    &trace,
                    config,
                    ResolveMode::Cold,
                    kill_at,
                    PersistConfig::default(),
                    &format!("cold-line @ {threads} threads, killed at {kill_at}"),
                );
            }
        });
    }
}

#[test]
fn cold_tree_recovery_is_byte_identical_including_the_split() {
    // Mixed heights force the wide/narrow split cores through the
    // snapshot (only their warm states travel; the cores themselves are
    // rebuilt) — the restore must still be byte-identical.
    let (problem, trace) = tree_trace(
        3,
        22,
        17,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    let base = Base::Tree(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    for kill_at in [1, epochs / 2, epochs] {
        check_kill_and_recover(
            &base,
            &trace,
            config,
            ResolveMode::Cold,
            kill_at,
            PersistConfig {
                durability: Durability::Batch,
                snapshot_every: 3,
            },
            &format!("cold-tree-mixed killed at {kill_at}"),
        );
    }
}

#[test]
fn warm_recovery_is_certificate_equivalent_at_every_thread_count() {
    let (problem, trace) = line_trace(4, 24, 7, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    for threads in [1usize, 2, 4] {
        with_threads(threads, || {
            for kill_at in [2, epochs] {
                check_kill_and_recover(
                    &base,
                    &trace,
                    config,
                    ResolveMode::Warm,
                    kill_at,
                    PersistConfig {
                        durability: Durability::Epoch,
                        snapshot_every: 3,
                    },
                    &format!("warm-line @ {threads} threads, killed at {kill_at}"),
                );
            }
        });
    }
}

#[test]
fn warm_tree_recovery_with_mixed_heights_restores_split_warm_states() {
    let (problem, trace) = tree_trace(
        3,
        20,
        29,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    let base = Base::Tree(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    for kill_at in [3, epochs] {
        check_kill_and_recover(
            &base,
            &trace,
            config,
            ResolveMode::Warm,
            kill_at,
            PersistConfig {
                durability: Durability::Epoch,
                snapshot_every: 4,
            },
            &format!("warm-tree-mixed killed at {kill_at}"),
        );
    }
}

#[test]
fn snapshot_cadence_bounds_the_replayed_suffix() {
    let (problem, trace) = line_trace(3, 18, 13, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    let report = check_kill_and_recover(
        &base,
        &trace,
        config,
        ResolveMode::Cold,
        epochs,
        PersistConfig {
            durability: Durability::None,
            snapshot_every: 3,
        },
        "cadence",
    );
    assert!(
        report.replayed_epochs <= 3,
        "replay suffix {} exceeds the snapshot cadence",
        report.replayed_epochs
    );
    assert!(report.snapshot_epoch >= (epochs as u64).saturating_sub(3));
    // Each cadence snapshot compacts away the records its predecessor
    // covered, so at most one cadence's worth of records remains to skip.
    assert!(
        report.skipped_records <= 3,
        "compaction left {} skipped records behind",
        report.skipped_records
    );
}

// ---------------------------------------------------------------------
// S2 regression: restored merged CSR is byte-identical and the
// generation-keyed cache cannot alias pre-crash folds
// ---------------------------------------------------------------------

#[test]
fn restored_sessions_never_serve_a_stale_merged_csr() {
    let (problem, trace) = line_trace(4, 20, 3, 0.25);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let tickets = ticket_table(&base, &trace);

    let mut original = base.session(config, ResolveMode::Cold);
    drive(&mut original, &trace, 0..4, &tickets);
    // Fold (and cache) the merged CSR on the original before snapshotting.
    let pre_crash = original.conflict().merged();

    let mut restored = ServiceSession::from_snapshot(&original.snapshot()).expect("restores");
    // The restored core's generation must have advanced past the
    // recovered epoch: a generation-keyed merged cache keyed off a fresh
    // build() would otherwise alias the pre-crash fold across the next
    // splice.
    assert!(
        restored.conflict().generation() >= original.epoch(),
        "restored generation {} behind the recovered epoch {}",
        restored.conflict().generation(),
        original.epoch()
    );
    assert_same_graph(&pre_crash, &restored.conflict().merged(), "post-restore");

    // Splice both one more epoch: the merged CSRs must stay identical
    // byte for byte (the regression was a stale cache surviving this).
    drive(&mut original, &trace, 4..5, &tickets);
    drive(&mut restored, &trace, 4..5, &tickets);
    assert_same_graph(
        &original.conflict().merged(),
        &restored.conflict().merged(),
        "post-restore splice",
    );
    match (original.last_solution(), restored.last_solution()) {
        (Some(a), Some(b)) => assert_same_solution(a, b, "post-restore splice"),
        (None, None) => {}
        _ => panic!("post-restore splice: one side solved, the other did not"),
    }
}

// ---------------------------------------------------------------------
// S3: log-corruption recovery (longest valid prefix, counted losses)
// ---------------------------------------------------------------------

/// Runs a durable session through the whole trace with only the initial
/// snapshot (so every epoch lives in the log), returning its directory.
fn logged_run(base: &Base, trace: &EventTrace, config: AlgorithmConfig) -> PathBuf {
    let dir = temp_dir();
    let mut durable = DurableSession::create(
        &dir,
        base.session(config, ResolveMode::Cold),
        PersistConfig {
            durability: Durability::None,
            snapshot_every: 0,
        },
    )
    .expect("create");
    let tickets = ticket_table(base, trace);
    for batch in &trace.batches {
        let events = to_events(batch, &tickets);
        durable.step(&events).expect("trace replays");
    }
    dir
}

/// The uninterrupted reference session driven through `epochs` batches.
fn reference_at(
    base: &Base,
    trace: &EventTrace,
    config: AlgorithmConfig,
    epochs: usize,
) -> ServiceSession {
    let tickets = ticket_table(base, trace);
    let mut session = base.session(config, ResolveMode::Cold);
    drive(&mut session, trace, 0..epochs, &tickets);
    session
}

#[test]
fn truncated_tail_record_recovers_to_the_last_valid_prefix() {
    let (problem, trace) = line_trace(3, 16, 19, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    let dir = logged_run(&base, &trace, config);

    // Cut the final record mid-payload.
    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    let recovered = restore(&dir).expect("truncated tail still restores");
    assert_eq!(recovered.report.dropped_records, 1);
    assert_eq!(recovered.report.replayed_epochs, epochs as u64 - 1);
    assert_eq!(recovered.report.final_epoch, epochs as u64 - 1);

    let reference = reference_at(&base, &trace, config, epochs - 1);
    assert_eq!(recovered.session.profit(), reference.profit());
    assert_eq!(recovered.session.schedule(), reference.schedule());
    assert_same_graph(
        &reference.conflict().merged(),
        &recovered.session.conflict().merged(),
        "truncated tail",
    );

    // Recovering through DurableSession truncates the torn suffix, so
    // the next append starts at a clean frame boundary.
    let (_, report) = DurableSession::recover(&dir, PersistConfig::default()).expect("recover");
    assert_eq!(report.dropped_records, 1);
    let rescan = scan_frames(&std::fs::read(&wal).unwrap());
    assert!(rescan.error.is_none(), "suffix not truncated cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_checksum_byte_drops_the_suffix_and_counts_it() {
    let (problem, trace) = line_trace(3, 16, 23, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    let dir = logged_run(&base, &trace, config);

    // Flip one payload byte of the record in the middle of the log.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    let scan = scan_frames(&bytes);
    assert_eq!(scan.frames.len(), epochs);
    let target = epochs / 2;
    let offset: usize = scan.frames[..target]
        .iter()
        .map(|f| FRAME_HEADER_LEN + f.len())
        .sum();
    bytes[offset + FRAME_HEADER_LEN] ^= 0xFF;
    std::fs::write(&wal, &bytes).unwrap();

    let recovered = restore(&dir).expect("flipped byte still restores");
    assert_eq!(recovered.report.replayed_epochs, target as u64);
    assert_eq!(recovered.report.final_epoch, target as u64);
    // The corrupt record plus every (structurally plausible, untrusted)
    // record after it.
    assert_eq!(recovered.report.dropped_records, epochs - target);

    let reference = reference_at(&base, &trace, config, target);
    assert_eq!(recovered.session.profit(), reference.profit());
    assert_eq!(recovered.session.schedule(), reference.schedule());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_log_recovers_the_snapshot_alone() {
    let (problem, trace) = line_trace(3, 16, 31, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);

    // Snapshots every 3 epochs, then the log vanishes entirely.
    let dir = temp_dir();
    let mut durable = DurableSession::create(
        &dir,
        base.session(config, ResolveMode::Cold),
        PersistConfig {
            durability: Durability::None,
            snapshot_every: 3,
        },
    )
    .expect("create");
    let tickets = ticket_table(&base, &trace);
    for batch in &trace.batches {
        let events = to_events(batch, &tickets);
        durable.step(&events).expect("trace replays");
    }
    let snapshot_epoch = durable.last_snapshot_epoch();
    drop(durable);
    std::fs::write(dir.join(WAL_FILE), b"").unwrap();

    let recovered = restore(&dir).expect("empty log still restores");
    assert_eq!(recovered.report.snapshot_epoch, snapshot_epoch);
    assert_eq!(recovered.report.replayed_epochs, 0);
    assert_eq!(recovered.report.skipped_records, 0);
    assert_eq!(recovered.report.dropped_records, 0);
    assert_eq!(recovered.report.final_epoch, snapshot_epoch);

    let reference = reference_at(&base, &trace, config, snapshot_epoch as usize);
    assert_eq!(recovered.session.profit(), reference.profit());
    assert_eq!(recovered.session.schedule(), reference.schedule());
    assert_same_graph(
        &reference.conflict().merged(),
        &recovered.session.conflict().merged(),
        "zero-length log",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn undecodable_record_is_cut_from_the_log_by_recovery() {
    // A CRC-valid frame that does not decode as a record drops itself
    // and everything after it — and recover() must truncate the log at
    // that frame, not merely at the last *structurally* valid one.
    // Otherwise the bad frame survives, new records append behind it,
    // and the next recovery drops the acknowledged records too.
    let (problem, trace) = line_trace(3, 16, 37, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    let dir = logged_run(&base, &trace, config);

    // Splice a CRC-valid non-record frame, then a decodable record that
    // becomes unreachable behind it.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&encode_frame(b"\"not a wal record\""));
    bytes.extend_from_slice(&encode_frame(
        wal_record(epochs as u64 + 1, &[]).render().as_bytes(),
    ));
    std::fs::write(&wal, &bytes).unwrap();

    let (mut recovered, report) =
        DurableSession::recover(&dir, PersistConfig::default()).expect("recover");
    // The garbage frame plus the record stranded behind it.
    assert_eq!(report.dropped_records, 2);
    assert_eq!(report.final_epoch, epochs as u64);
    // The cut landed at the garbage frame: every replayable record
    // survived the truncation.
    let rescan = scan_frames(&std::fs::read(&wal).unwrap());
    assert!(rescan.error.is_none());
    assert_eq!(rescan.frames.len(), epochs);

    // Records acknowledged after the recovery stay recoverable — the
    // regression was this second recovery rediscovering the bad frame
    // and dropping them.
    recovered.step(&[]).expect("keep-alive epoch");
    let epoch = recovered.session().epoch();
    drop(recovered);
    let (recovered, report) =
        DurableSession::recover(&dir, PersistConfig::default()).expect("second recover");
    assert_eq!(report.dropped_records, 0);
    assert_eq!(recovered.session().epoch(), epoch);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn epoch_gap_truncates_at_the_last_replayed_record() {
    // Remove a record from the middle of the log: replay stops at the
    // discontinuity and recover() must cut the log there, so the gapped
    // suffix does not strand records acknowledged afterwards.
    let (problem, trace) = line_trace(3, 16, 41, 0.2);
    let base = Base::Line(problem);
    let config = AlgorithmConfig::deterministic(0.1);
    let epochs = trace.batches.len();
    assert!(epochs >= 3, "trace too short to gap");
    let dir = logged_run(&base, &trace, config);

    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    let scan = scan_frames(&bytes);
    let first_len = FRAME_HEADER_LEN + scan.frames[0].len();
    let second_len = FRAME_HEADER_LEN + scan.frames[1].len();
    let mut gapped = bytes[..first_len].to_vec();
    gapped.extend_from_slice(&bytes[first_len + second_len..]);
    std::fs::write(&wal, &gapped).unwrap();

    let (recovered, report) =
        DurableSession::recover(&dir, PersistConfig::default()).expect("recover");
    assert_eq!(report.replayed_epochs, 1);
    assert_eq!(report.dropped_records, epochs - 2);
    assert_eq!(recovered.session().epoch(), 1);
    // The log was cut right after the last replayed record.
    let rescan = scan_frames(&std::fs::read(&wal).unwrap());
    assert!(rescan.error.is_none());
    assert_eq!(rescan.frames.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_files_fail_cleanly() {
    let dir = temp_dir();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(WAL_FILE), b"").unwrap();
    let err = restore(&dir).expect_err("no snapshot must be an error, not a panic");
    assert!(err.contains("no valid snapshot"), "unexpected error: {err}");

    // A directory whose only snapshot is corrupt fails the same way.
    std::fs::write(snapshot_path(&dir, 0), b"garbage").unwrap();
    let err = restore(&dir).expect_err("corrupt-only snapshots must error");
    assert!(err.contains("no valid snapshot"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Randomized churn traces, killed at an arbitrary epoch
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_line_traces_survive_a_kill_at_an_arbitrary_epoch(
        case in ChurnCases { shape: ChurnShape::Line },
    ) {
        let case: ChurnCase = case;
        let config = AlgorithmConfig::deterministic(0.12);
        let base = Base::Line(case.line_problem().clone());
        let epochs = case.trace.batches.len();
        let kill_at = (case.seed as usize) % (epochs + 1);
        check_kill_and_recover(
            &base,
            &case.trace,
            config,
            ResolveMode::Cold,
            kill_at,
            PersistConfig {
                durability: Durability::Epoch,
                snapshot_every: 2,
            },
            &format!("proptest-line killed at {kill_at}/{epochs}"),
        );
    }

    #[test]
    fn random_tree_traces_survive_a_kill_at_an_arbitrary_epoch(
        case in ChurnCases { shape: ChurnShape::Tree },
    ) {
        let case: ChurnCase = case;
        let config = AlgorithmConfig::deterministic(0.12);
        let base = Base::Tree(case.tree_problem().clone());
        let epochs = case.trace.batches.len();
        let kill_at = (case.seed as usize) % (epochs + 1);
        check_kill_and_recover(
            &base,
            &case.trace,
            config,
            ResolveMode::Warm,
            kill_at,
            PersistConfig {
                durability: Durability::Epoch,
                snapshot_every: 2,
            },
            &format!("proptest-tree-warm killed at {kill_at}/{epochs}"),
        );
    }
}
