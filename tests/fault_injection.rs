//! Fault-injection harness: scripted I/O and solve faults against the
//! durable serving tier, pinning **graceful degradation** end to end.
//!
//! Every fault is a deterministic [`FaultPlan`] schedule installed
//! through [`DurableSession::inject_faults`]:
//!
//! * **Transient append failures** retry with backoff and succeed — the
//!   epoch is served, the retries are counted in [`WalHealth`].
//! * **Torn appends** are rolled back to the pre-append length before
//!   the retry, so the log replays with zero dropped records afterwards.
//! * **Persistent append failures** fail the step with the session
//!   *unchanged* (the write-ahead contract never silently drops a
//!   record).
//! * **Persistent fsync failures** never fail the step: they walk the
//!   durability ladder (`Batch → Epoch → None`) one rung per exhausted
//!   retry loop, each downgrade operator-visible as a [`DegradeEvent`].
//! * **Injected solve panics** are quarantined by
//!   [`step_with_deadline`](netsched_service::ServiceSession::step_with_deadline):
//!   the session restores from its pre-step structures, tombstones the
//!   dead write-ahead record (replay skips it — or, if the tombstone
//!   append fails too, the retried epoch supersedes it) and keeps
//!   serving.
//!
//! A final scenario combines injected faults with deadline-bounded
//! epochs and a crash, asserting recovery replays the survivors.

use netsched_core::{AlgorithmConfig, Budget, CertificateQuality};
use netsched_graph::{LineProblem, NetworkId};
use netsched_persist::{Durability, DurableSession, PersistConfig};
use netsched_service::{DemandEvent, DemandRequest, ServiceError, ServiceSession};
use netsched_workloads::FaultPlan;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netsched-faults-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn line_problem() -> LineProblem {
    let mut p = LineProblem::new(24, 2);
    let acc = vec![NetworkId::new(0), NetworkId::new(1)];
    for (release, len, profit) in [(0u32, 4u32, 3.0), (2, 5, 2.0), (8, 3, 4.0)] {
        p.add_demand(release, release + len + 2, len, profit, 1.0, acc.clone())
            .unwrap();
    }
    p
}

fn arrival(start: u32) -> DemandEvent {
    DemandEvent::Arrive(DemandRequest::Line {
        release: start,
        deadline: start + 6,
        processing: 3,
        profit: 2.5,
        height: 1.0,
        access: vec![NetworkId::new(0)],
    })
}

fn durable(dir: &PathBuf, durability: Durability) -> DurableSession {
    DurableSession::create(
        dir,
        ServiceSession::for_line(&line_problem(), AlgorithmConfig::deterministic(0.1)),
        PersistConfig {
            durability,
            snapshot_every: 0,
        },
    )
    .unwrap()
}

#[test]
fn transient_append_failures_retry_and_serve_the_epoch() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Batch);
    // Ops 0 and 1 fail, the op-2 retry lands: one logical append survives
    // two injected faults.
    session.inject_faults(FaultPlan::none().fail_appends([0, 1]));
    session
        .step(&[arrival(1)])
        .expect("retries absorb the fault");
    let health = session.health();
    assert_eq!(health.append_retries, 2);
    assert!(!health.degraded());
    assert_eq!(session.session().epoch(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_appends_roll_back_and_leave_a_clean_log() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Epoch);
    session.inject_faults(FaultPlan::none().short_appends([0, 2]));
    for start in [1u32, 5, 9] {
        session
            .step(&[arrival(start)])
            .expect("torn writes retried");
    }
    let profit = session.session().profit();
    drop(session); // the crash
    let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
    // The rollbacks kept every frame boundary clean: nothing dropped.
    assert_eq!(report.dropped_records, 0);
    assert_eq!(report.replayed_epochs, 3);
    assert_eq!(recovered.session().epoch(), 3);
    assert_eq!(recovered.session().profit(), profit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_append_failures_fail_the_step_with_the_session_unchanged() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Batch);
    session.step(&[arrival(1)]).unwrap();
    let epoch = session.session().epoch();
    let schedule = session.session().schedule();
    // Four consecutive failures exhaust the initial attempt + 3 retries.
    session.inject_faults(FaultPlan::none().fail_appends([0, 1, 2, 3]));
    match session.step(&[arrival(5)]) {
        Err(ServiceError::Journal(why)) => {
            assert!(why.contains("injected append failure"), "{why}");
        }
        other => panic!("expected a journal failure, got {other:?}"),
    }
    // Write-ahead contract: the failed step left no trace.
    assert_eq!(session.session().epoch(), epoch);
    assert_eq!(session.session().schedule(), schedule);
    assert!(!session.health().degraded());
    // The injected ops are spent; the tier serves again.
    session
        .step(&[arrival(5)])
        .expect("fault schedule exhausted");
    assert_eq!(session.session().epoch(), epoch + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_fsync_failures_walk_the_durability_ladder() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Batch);
    // Six sync failures: 3 exhaust the batch-append sync (Batch → Epoch),
    // the epoch-cadence sync of the same step then exhausts its own
    // retries (Epoch → None). The step itself still succeeds.
    session.inject_faults(FaultPlan::none().fail_syncs([0, 1, 2, 3, 4, 5]));
    session.step(&[arrival(1)]).expect("degrade, not crash");
    let health = session.health();
    assert_eq!(health.configured_durability, Durability::Batch);
    assert_eq!(health.effective_durability, Durability::None);
    assert!(health.degraded());
    assert_eq!(health.sync_failures, 6);
    assert_eq!(health.degrade_events.len(), 2);
    assert_eq!(health.degrade_events[0].from, Durability::Batch);
    assert_eq!(health.degrade_events[0].to, Durability::Epoch);
    assert_eq!(health.degrade_events[1].from, Durability::Epoch);
    assert_eq!(health.degrade_events[1].to, Durability::None);
    assert!(health.degrade_events[0].cause.contains("injected fsync"));
    // Records were still appended: a crash now recovers every epoch.
    session.step(&[arrival(5)]).unwrap();
    let profit = session.session().profit();
    drop(session);
    let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
    assert_eq!(report.dropped_records, 0);
    assert_eq!(recovered.session().epoch(), 2);
    assert_eq!(recovered.session().profit(), profit);
    assert!(!recovered.health().degraded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn epoch_mode_degrades_to_none_and_stops_syncing() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Epoch);
    session.inject_faults(FaultPlan::none().fail_syncs([0, 1, 2]));
    session.step(&[arrival(1)]).expect("degrade, not crash");
    let health = session.health();
    assert_eq!(health.effective_durability, Durability::None);
    assert_eq!(health.degrade_events.len(), 1);
    assert_eq!(health.degrade_events[0].epoch, 1);
    // Later steps skip the sync entirely — the spent plan would let a
    // sync succeed, but `None` means none are attempted.
    let failures = health.sync_failures;
    session.step(&[arrival(5)]).unwrap();
    assert_eq!(session.health().sync_failures, failures);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_appends_only_add_latency() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Batch);
    session.inject_faults(FaultPlan::none().slow_appends(200));
    session.step(&[arrival(1)]).expect("slow disk still serves");
    let health = session.health();
    assert_eq!(health.append_retries, 0);
    assert!(!health.degraded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_solve_panics_quarantine_the_batch_and_restore_the_session() {
    let problem = line_problem();
    let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1));
    session.step(&[arrival(1)]).unwrap();
    let epoch = session.epoch();
    let schedule = session.schedule();
    let profit = session.profit();

    session.inject_solve_panics(vec![epoch + 1]);
    match session.step_with_deadline(&[arrival(5)], &Budget::unlimited()) {
        Err(ServiceError::Quarantined { reason }) => {
            assert!(reason.contains("injected solve fault"), "{reason}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    // The poisoned batch left nothing behind.
    assert_eq!(session.epoch(), epoch);
    assert_eq!(session.schedule(), schedule);
    assert_eq!(session.profit(), profit);

    // Disarmed, the same batch serves — the session was not poisoned.
    session.inject_solve_panics(Vec::new());
    let delta = session
        .step_with_deadline(&[arrival(5)], &Budget::unlimited())
        .expect("restored session serves");
    assert_eq!(delta.stats.quality, CertificateQuality::Full);
    assert_eq!(session.epoch(), epoch + 1);
    session
        .last_solution()
        .expect("solved")
        .verify(session.universe())
        .expect("post-quarantine schedule feasible");
}

#[test]
fn quarantine_through_the_durable_tier_keeps_serving() {
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Epoch);
    session.step(&[arrival(1)]).unwrap();
    // Arm the solve fault through the same plan surface as the I/O faults.
    session.inject_faults(FaultPlan::none().panic_at_epochs([2]));
    let budget = Budget::unlimited();
    match session
        .session_mut()
        .step_with_deadline(&[arrival(5)], &budget)
    {
        Err(ServiceError::Quarantined { .. }) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(session.session().epoch(), 1);
    session.inject_faults(FaultPlan::none());
    session
        .step(&[arrival(9)])
        .expect("tier serves after quarantine");
    assert_eq!(session.session().epoch(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_batches_never_resurrect_across_a_crash() {
    // The write-ahead journal records a batch before its solve, so a
    // quarantine leaves a dead record in the log. The rollback tombstone
    // appended after the restore must make replay skip it — and keep
    // every acknowledged record after the retried epoch.
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Batch);
    session.step(&[arrival(1)]).unwrap();
    session.inject_faults(FaultPlan::none().panic_at_epochs([2]));
    match session
        .session_mut()
        .step_with_deadline(&[arrival(5)], &Budget::unlimited())
    {
        Err(ServiceError::Quarantined { .. }) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }
    session.inject_faults(FaultPlan::none());
    // The retry re-uses epoch 2 with a *different* batch, then a further
    // acknowledged epoch lands on top.
    session.step(&[arrival(9)]).expect("retry serves");
    session.step(&[arrival(13)]).expect("later epoch serves");
    let epoch = session.session().epoch();
    let profit = session.session().profit();
    let schedule = session.session().schedule();
    drop(session); // the crash

    let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
    assert_eq!(report.rolled_back_records, 1, "dead record not cancelled");
    assert_eq!(report.dropped_records, 0, "acknowledged records dropped");
    assert_eq!(report.final_epoch, epoch);
    assert_eq!(recovered.session().epoch(), epoch);
    assert_eq!(recovered.session().profit(), profit);
    assert_eq!(recovered.session().schedule(), schedule);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_tombstone_appends_fall_back_to_supersede_on_replay() {
    // Worst case: the quarantine's own tombstone append fails too (the
    // disk is misbehaving). The retried batch re-uses the dead record's
    // epoch, and replay must let the last record of a duplicated epoch
    // supersede the dead one.
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Epoch);
    session.step(&[arrival(1)]).unwrap();
    // Counters reset at installation: op 0 is the quarantined batch's
    // (successful) record append, ops 1..=4 exhaust the tombstone's
    // initial attempt + 3 retries.
    session.inject_faults(
        FaultPlan::none()
            .panic_at_epochs([2])
            .fail_appends([1, 2, 3, 4]),
    );
    match session
        .session_mut()
        .step_with_deadline(&[arrival(5)], &Budget::unlimited())
    {
        Err(ServiceError::Quarantined { .. }) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert!(
        session.health().append_retries >= 4,
        "tombstone append was expected to fail"
    );
    session.inject_faults(FaultPlan::none());
    session.step(&[arrival(9)]).expect("retry serves");
    session.step(&[arrival(13)]).expect("later epoch serves");
    let epoch = session.session().epoch();
    let profit = session.session().profit();
    drop(session); // the crash

    let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
    assert_eq!(report.rolled_back_records, 1, "dead record not superseded");
    assert_eq!(report.dropped_records, 0);
    assert_eq!(recovered.session().epoch(), epoch);
    assert_eq!(recovered.session().profit(), profit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faults_deadlines_and_recovery_compose() {
    // The CI fault leg's end-to-end scenario: torn and failed appends,
    // exhausted fsyncs and deadline-cut epochs all at once, then a crash.
    let dir = temp_dir();
    let mut session = durable(&dir, Durability::Batch);
    session.inject_faults(
        FaultPlan::none()
            .fail_appends([1])
            .short_appends([3])
            .fail_syncs([0, 1, 2])
            .slow_appends(50),
    );
    let mut truncated = 0;
    for start in [1u32, 5, 9, 13] {
        // A fresh budget per epoch: round accounting is per-`Budget`.
        let delta = session
            .session_mut()
            .step_with_deadline(&[arrival(start)], &Budget::rounds(1))
            .expect("faulted, budgeted epoch still serves");
        if delta.stats.quality.is_truncated() {
            truncated += 1;
        }
    }
    assert!(truncated > 0, "round budget 1 never cut a solve");
    // Lift the deadline: the carried work converges.
    let delta = session.step(&[]).unwrap();
    assert_eq!(delta.stats.quality, CertificateQuality::Full);
    assert!(session.health().degraded());
    let epoch = session.session().epoch();
    let profit = session.session().profit();
    drop(session); // the crash

    let (recovered, report) = DurableSession::recover(&dir, PersistConfig::default()).unwrap();
    assert_eq!(report.dropped_records, 0);
    assert_eq!(recovered.session().epoch(), epoch);
    assert_eq!(recovered.session().profit(), profit);
    let _ = std::fs::remove_dir_all(&dir);
}
