//! Observability contract tests for the instrumented serving path.
//!
//! The obs registry is not a best-effort sidecar: its numbers must agree
//! with the session's own telemetry or operators will tune against
//! fiction. This suite pins the load-bearing invariants:
//!
//! * **Phase tiling** — the per-epoch phase histograms
//!   (`epoch.splice_ns` + `epoch.conflict_rebuild_ns` and
//!   `epoch.solve_ns`) are recorded from the *same clock reads* that
//!   produce `DeltaStats::rebuild_seconds` / `solve_seconds`, so their
//!   sums must agree to nanosecond-conversion rounding, not merely
//!   correlate.
//! * **Enabled overhead** — a traced + metered epoch pays well under 5%
//!   of the epoch's own duration for its spans and histogram records.
//! * **Calibrated deadlines** — after a few epochs the session's
//!   [`RoundCalibration`] is primed and compiles a wall-clock deadline
//!   into a round cap the engine never exceeds.
//! * **Quarantine forensics** — a quarantined batch leaves a
//!   `quarantine/epoch-<N>/` dump whose `batch.json` round-trips through
//!   the write-ahead record parser byte-for-byte.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use netsched_core::{AlgorithmConfig, Budget};
use netsched_graph::{LineProblem, NetworkId};
use netsched_persist::{Durability, DurableSession, PersistConfig};
use netsched_service::{
    parse_wal_record, replay_trace, wal_record, DemandEvent, DemandRequest, ServiceError,
    ServiceSession, WalRecord,
};
use netsched_workloads::json::JsonValue;
use netsched_workloads::{many_networks_line, poisson_arrivals_line, ChurnSpec, FaultPlan};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "netsched-obs-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A churned line session: warm-up solve plus `epochs` replayed batches,
/// returning the session and the summed per-delta telemetry
/// `(rebuild_seconds, solve_seconds)`.
fn churned_session(epochs: usize) -> (ServiceSession, f64, f64) {
    let base = many_networks_line(6, 160, 11);
    let spec = ChurnSpec {
        epochs,
        churn: 0.05,
        focus: 2,
        seed: 3,
    };
    let trace = poisson_arrivals_line(&base, &spec);
    let problem = base.build().unwrap();
    let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.25));
    session.step(&[]).expect("initial solve");
    let deltas = replay_trace(&mut session, &trace).expect("trace replays");
    let rebuild_s: f64 = deltas.iter().map(|d| d.stats.rebuild_seconds).sum();
    let solve_s: f64 = deltas.iter().map(|d| d.stats.solve_seconds).sum();
    (session, rebuild_s, solve_s)
}

#[test]
fn phase_histograms_tile_the_epoch_telemetry() {
    let epochs = 16;
    let (session, rebuild_s, solve_s) = churned_session(epochs);
    let report = session.obs_registry().snapshot();

    let hist = |name: &str| {
        *report
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram `{name}` missing from the report"))
    };
    let step = hist("epoch.step_ns");
    let splice = hist("epoch.splice_ns");
    let conflict = hist("epoch.conflict_rebuild_ns");
    let solve = hist("epoch.solve_ns");
    let validate = hist("epoch.validate_ns");
    let journal = hist("epoch.journal_ns");
    let delta_emit = hist("epoch.delta_emit_ns");

    // Warm-up + replayed epochs each record exactly one step sample.
    assert_eq!(step.count, epochs as u64 + 1);
    assert_eq!(report.counter("epoch.count"), Some(epochs as u64 + 1));
    assert_eq!(solve.count, epochs as u64 + 1);

    // splice + conflict_rebuild is recorded from the same elapsed reading
    // as `DeltaStats::rebuild_seconds`, and solve from the same reading as
    // `solve_seconds`; only f64→ns conversion rounding may separate them
    // (the histogram sums are exact, not bucketized). The delta telemetry
    // excludes the warm-up epoch, so subtract its samples via the count
    // difference being impossible — instead compare against telemetry
    // summed over *all* emitted deltas below.
    let rebuild_ns_obs = (splice.sum + conflict.sum) as f64;
    let solve_ns_obs = solve.sum as f64;

    // The warm-up epoch's delta was consumed inside `churned_session`'s
    // `step(&[])`; its stats are not in rebuild_s/solve_s. Re-derive its
    // contribution as the report-minus-telemetry remainder and require
    // that remainder to be one epoch's worth, i.e. the telemetry sums are
    // a *lower* bound within one mean epoch plus rounding slack.
    let tol = 0.01 * rebuild_ns_obs.max(solve_ns_obs) + 50_000.0 * (epochs as f64 + 1.0);
    assert!(
        rebuild_ns_obs >= rebuild_s * 1e9 - tol,
        "splice+conflict sum {rebuild_ns_obs}ns under-counts telemetry {}ns",
        rebuild_s * 1e9
    );
    assert!(
        solve_ns_obs >= solve_s * 1e9 - tol,
        "solve sum {solve_ns_obs}ns under-counts telemetry {}ns",
        solve_s * 1e9
    );

    // Every phase nests inside the step: the tiled sum can never exceed
    // the whole-epoch sum.
    let phases =
        validate.sum + journal.sum + splice.sum + conflict.sum + solve.sum + delta_emit.sum;
    assert!(
        phases <= step.sum,
        "phase sums {phases}ns exceed the step total {}ns",
        step.sum
    );
    // And the phases account for the bulk of the epoch — the step is not
    // dominated by un-instrumented gaps.
    assert!(
        phases as f64 >= 0.80 * step.sum as f64,
        "phases cover only {phases}ns of {}ns step time",
        step.sum
    );

    // Exporters carry the same histograms.
    let json = report.to_json();
    assert!(json.contains("epoch.step_ns"));
    let prom = report.to_prometheus();
    assert!(prom.contains("netsched_epoch_step_ns"));
}

#[test]
fn phase_sums_match_delta_telemetry_exactly_per_epoch() {
    // Single-epoch variant with no warm-up mismatch: one tracked step, so
    // the histogram sums and the emitted delta's stats come from the very
    // same two clock reads.
    let base = many_networks_line(4, 80, 19);
    let spec = ChurnSpec {
        epochs: 1,
        churn: 0.05,
        focus: 2,
        seed: 5,
    };
    let trace = poisson_arrivals_line(&base, &spec);
    let problem = base.build().unwrap();
    let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.25));
    session.step(&[]).expect("initial solve");
    // Fresh registry: the measured epoch is the only sample.
    let mut session = session.with_obs(netsched_obs::ObsRegistry::default());
    let deltas = replay_trace(&mut session, &trace).expect("trace replays");
    assert_eq!(deltas.len(), 1);
    let stats = &deltas[0].stats;

    let report = session.obs_registry().snapshot();
    let splice = report.histogram("epoch.splice_ns").unwrap();
    let conflict = report.histogram("epoch.conflict_rebuild_ns").unwrap();
    let solve = report.histogram("epoch.solve_ns").unwrap();

    // f64 seconds → integer ns rounding is the only permitted slack.
    let rebuild_ns = (splice.sum + conflict.sum) as f64;
    let solve_ns = solve.sum as f64;
    assert!(
        (rebuild_ns - stats.rebuild_seconds * 1e9).abs() <= 1_000.0,
        "rebuild: obs {rebuild_ns}ns vs telemetry {}ns",
        stats.rebuild_seconds * 1e9
    );
    assert!(
        (solve_ns - stats.solve_seconds * 1e9).abs() <= 1_000.0,
        "solve: obs {solve_ns}ns vs telemetry {}ns",
        stats.solve_seconds * 1e9
    );
}

#[test]
fn enabled_instrumentation_costs_under_five_percent_of_an_epoch() {
    // Measure the marginal cost of the instrumentation an epoch performs
    // (3 spans + ~13 histogram/counter operations with tracing *enabled*)
    // and compare it against the measured mean epoch duration of a real
    // churned session. The bound must hold with an order of magnitude to
    // spare — it pins the "near-zero cost" contract, not a lucky timing.
    let (session, _, _) = churned_session(16);
    let step = session
        .obs_registry()
        .snapshot()
        .histogram("epoch.step_ns")
        .copied()
        .expect("step histogram");
    let mean_epoch_ns = step.sum as f64 / step.count as f64;

    let obs = netsched_obs::ObsRegistry::default();
    let hist = obs.histogram("overhead.probe_ns");
    let counter = obs.counter("overhead.probe");
    netsched_obs::set_tracing(true);
    let iters = 20_000u32;
    let start = Instant::now();
    for i in 0..iters {
        let _outer = netsched_obs::span!("overhead.outer");
        let _mid = netsched_obs::span!("overhead.mid");
        let _inner = netsched_obs::span!("overhead.inner");
        for _ in 0..13 {
            hist.record(u64::from(i));
        }
        counter.inc();
    }
    let per_epoch_cost = start.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
    netsched_obs::set_tracing(false);

    assert!(
        per_epoch_cost < 0.05 * mean_epoch_ns,
        "instrumentation costs {per_epoch_cost:.0}ns per epoch against a \
         {mean_epoch_ns:.0}ns mean epoch (must be <5%)"
    );
}

#[test]
fn calibrated_deadlines_compile_to_round_caps_the_engine_respects() {
    let (mut session, _, _) = churned_session(12);
    let calibration = *session.calibration();
    assert!(
        calibration.is_primed(),
        "12 solved epochs must prime the EWMA ({} observations)",
        calibration.observations()
    );
    let rate = calibration.secs_per_round().expect("primed rate");
    assert!(rate > 0.0);

    let deadline = Duration::from_millis(5);
    let cap = calibration
        .rounds_for(deadline)
        .expect("primed calibration compiles deadlines");
    // The compiled cap never predicts past the deadline (one-round floor
    // aside): cap * rate ≤ deadline, so a correct EWMA means the engine
    // stops before the wall clock does.
    assert!(
        cap == 1 || cap as f64 * rate <= deadline.as_secs_f64() * (1.0 + 1e-6),
        "cap {cap} at {rate}s/round overshoots the {deadline:?} deadline"
    );

    let rounds_before = session.obs_registry().counter("engine.mis_rounds").get();
    let budget = session.calibrated_budget(deadline);
    let events = vec![DemandEvent::Arrive(DemandRequest::Line {
        release: 0,
        deadline: 8,
        processing: 3,
        profit: 2.5,
        height: 1.0,
        access: vec![NetworkId::new(0)],
    })];
    session
        .step_with_deadline(&events, &budget)
        .expect("bounded epoch serves");
    let rounds_used = session.obs_registry().counter("engine.mis_rounds").get() - rounds_before;
    assert!(
        rounds_used <= cap,
        "engine ran {rounds_used} rounds against a cap of {cap}"
    );
}

#[test]
fn quarantine_forensics_dump_round_trips_through_the_wal_parser() {
    let dir = temp_dir();
    let mut problem = LineProblem::new(24, 2);
    problem
        .add_demand(
            0,
            8,
            4,
            3.0,
            1.0,
            vec![NetworkId::new(0), NetworkId::new(1)],
        )
        .unwrap();
    let mut durable = DurableSession::create(
        &dir,
        ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1)),
        PersistConfig {
            durability: Durability::Epoch,
            snapshot_every: 0,
        },
    )
    .unwrap();

    let batch = vec![DemandEvent::Arrive(DemandRequest::Line {
        release: 2,
        deadline: 9,
        processing: 3,
        profit: 2.5,
        height: 1.0,
        access: vec![NetworkId::new(1)],
    })];
    durable.step(&[]).unwrap();
    durable.inject_faults(FaultPlan::none().panic_at_epochs([2]));
    match durable.step_with_deadline(&batch, &Budget::unlimited()) {
        Err(ServiceError::Quarantined { .. }) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }

    let forensics = dir.join("quarantine").join("epoch-2");
    let raw = std::fs::read_to_string(forensics.join("batch.json"))
        .expect("quarantine dump writes batch.json");
    // Byte-identical to the write-ahead record the journal carried...
    assert_eq!(raw, wal_record(2, &batch).render());
    // ...and it round-trips through the recovery parser.
    let parsed = parse_wal_record(&JsonValue::parse(&raw).unwrap()).unwrap();
    assert_eq!(
        parsed,
        WalRecord::Batch {
            epoch: 2,
            batch: batch.clone()
        }
    );

    let panic_txt = std::fs::read_to_string(forensics.join("panic.txt"))
        .expect("quarantine dump writes panic.txt");
    assert!(
        panic_txt.contains("injected solve fault"),
        "panic payload missing: {panic_txt:?}"
    );

    let metrics = std::fs::read_to_string(forensics.join("metrics.json"))
        .expect("quarantine dump writes metrics.json");
    let doc = JsonValue::parse(&metrics).expect("metrics dump is valid JSON");
    assert_eq!(
        doc.field("counters")
            .and_then(|c| c.field("epoch.quarantined"))
            .and_then(|v| v.as_u64())
            .ok(),
        Some(1),
        "the dumped report must already count the quarantine"
    );

    // The tier keeps serving after the dump, with the batch retryable.
    durable.inject_faults(FaultPlan::none());
    durable.step(&batch).expect("retry serves");
    let _ = std::fs::remove_dir_all(&dir);
}
