//! Property-based tests for the scheduling algorithms: feasibility, dual
//! certificates and the approximation guarantees, on random instances of all
//! flavours (unit/arbitrary heights, tree/line networks, with/without
//! windows, uniform/non-uniform capacities).

use netsched::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tree_problem(seed: u64, n: usize, r: usize, m: usize, unit: bool) -> TreeProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = TreeProblem::new(n);
    let mut nets = Vec::new();
    for _ in 0..r {
        let edges = (1..n)
            .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
            .collect();
        nets.push(p.add_network(edges).unwrap());
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        let access: Vec<NetworkId> = nets.iter().copied().filter(|_| rng.gen_bool(0.7)).collect();
        let access = if access.is_empty() {
            vec![nets[0]]
        } else {
            access
        };
        let height = if unit { 1.0 } else { rng.gen_range(0.05..=1.0) };
        p.add_demand(
            VertexId::new(u),
            VertexId::new(v),
            rng.gen_range(1.0..=64.0),
            height,
            access,
        )
        .unwrap();
    }
    p
}

fn random_line_problem(seed: u64, n: u32, r: usize, m: usize, unit: bool) -> LineProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LineProblem::new(n as usize, r);
    let acc_all: Vec<NetworkId> = (0..r).map(NetworkId::new).collect();
    for _ in 0..m {
        let len = rng.gen_range(1..=(n / 3).max(1));
        let release = rng.gen_range(0..=(n - len));
        let slack = rng.gen_range(0..=(n - release - len).min(4));
        let access: Vec<NetworkId> = acc_all
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.7))
            .collect();
        let access = if access.is_empty() {
            vec![acc_all[0]]
        } else {
            access
        };
        let height = if unit { 1.0 } else { rng.gen_range(0.05..=1.0) };
        p.add_demand(
            release,
            release + len - 1 + slack,
            len,
            rng.gen_range(1.0..=32.0),
            height,
            access,
        )
        .unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.3 invariants on random unit-height tree instances:
    /// feasibility, λ ≥ 1 − ε, ∆ ≤ 6, and the certified ratio within
    /// 7/(1 − ε).
    #[test]
    fn unit_tree_invariants(seed in any::<u64>(), n in 6usize..32, r in 1usize..4, m in 1usize..24) {
        let p = random_tree_problem(seed, n, r, m, true);
        let u = p.universe();
        let sol = solve_unit_tree(&p, &AlgorithmConfig::deterministic(0.1));
        prop_assert!(sol.verify(&u).is_ok());
        prop_assert!(sol.diagnostics.delta <= 6);
        prop_assert!(sol.diagnostics.lambda >= 0.9 - 1e-9);
        if let Some(ratio) = sol.certified_ratio() {
            prop_assert!(ratio <= 7.0 / 0.9 + 1e-6);
        }
        // Lemma 3.1 inequality: dual ≤ (∆ + 1) · profit.
        prop_assert!(sol.profit * (sol.diagnostics.delta as f64 + 1.0) + 1e-6 >= sol.diagnostics.dual_objective);
    }

    /// Theorem 6.3 invariants on random arbitrary-height tree instances.
    #[test]
    fn arbitrary_tree_invariants(seed in any::<u64>(), n in 6usize..24, r in 1usize..3, m in 1usize..18) {
        let p = random_tree_problem(seed, n, r, m, false);
        let u = p.universe();
        let sol = solve_arbitrary_tree(&p, &AlgorithmConfig::deterministic(0.1));
        prop_assert!(sol.verify(&u).is_ok());
        if let Some(ratio) = sol.certified_ratio() {
            prop_assert!(ratio <= 82.0 / 0.9 + 1e-6);
        }
    }

    /// Theorem 7.1 / 7.2 invariants on random windowed line instances, plus
    /// the Panconesi–Sozio baseline and greedy always being feasible.
    #[test]
    fn line_invariants(seed in any::<u64>(), n in 10u32..48, r in 1usize..3, m in 1usize..16, unit in any::<bool>()) {
        let p = random_line_problem(seed, n, r, m, unit);
        let u = p.universe();
        let sol = if unit {
            solve_line_unit(&p, &AlgorithmConfig::deterministic(0.1))
        } else {
            solve_line_arbitrary(&p, &AlgorithmConfig::deterministic(0.1))
        };
        prop_assert!(sol.verify(&u).is_ok());
        prop_assert!(sol.diagnostics.delta <= 3);
        let ps = if unit {
            solve_ps_line_unit(&p, &AlgorithmConfig::deterministic(0.2))
        } else {
            solve_ps_line_narrow(&p, &AlgorithmConfig::deterministic(0.2))
        };
        prop_assert!(ps.verify(&u).is_ok());
        let greedy = best_greedy(&u);
        prop_assert!(greedy.verify(&u).is_ok());
        // Dual certificates upper-bound any feasible solution, in particular
        // the greedy one.
        prop_assert!(sol.diagnostics.optimum_upper_bound + 1e-6 >= greedy.profit);
    }

    /// On small instances the dual certificate upper-bounds the true optimum
    /// and the empirical ratio respects the worst-case bound.
    #[test]
    fn certificates_dominate_exact_optimum(seed in any::<u64>()) {
        let p = random_tree_problem(seed, 12, 2, 8, true);
        let u = p.universe();
        let exact = exact_optimum(&u);
        prop_assert!(exact.complete);
        let sol = solve_unit_tree(&p, &AlgorithmConfig::deterministic(0.1));
        prop_assert!(sol.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit);
        prop_assert!(exact.profit + 1e-9 >= sol.profit);
        let seq = solve_sequential_tree(&p);
        prop_assert!(seq.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit);
        prop_assert!(exact.profit + 1e-9 >= seq.profit);
        if seq.profit > 0.0 {
            prop_assert!(exact.profit / seq.profit <= 3.0 + 1e-9);
        }
        if sol.profit > 0.0 {
            prop_assert!(exact.profit / sol.profit <= 7.0 / 0.9 + 1e-9);
        }
    }

    /// The capacitated extension never violates per-edge capacities and
    /// never schedules an instance whose height exceeds a capacity on its
    /// path.
    #[test]
    fn capacitated_feasibility(seed in any::<u64>(), n in 6usize..20, m in 1usize..14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = random_tree_problem(seed, n, 2, m, false);
        // Randomize capacities in [0.5, 2.0].
        for t in 0..p.num_networks() {
            let edges = p.capacities(NetworkId::new(t)).len();
            for e in 0..edges {
                let c = rng.gen_range(0.5..=2.0);
                p.set_capacity(NetworkId::new(t), e, c).unwrap();
            }
        }
        let u = p.universe();
        let sol = solve_arbitrary_tree(&p, &AlgorithmConfig::deterministic(0.15));
        prop_assert!(sol.verify(&u).is_ok());
        for t in 0..u.num_networks() {
            let network = NetworkId::new(t);
            let loads = u.edge_loads(network, &sol.selected);
            for (e, &load) in loads.iter().enumerate() {
                prop_assert!(load <= u.capacity(GlobalEdge::new(network, EdgeId::new(e))) + 1e-9);
            }
        }
    }

    /// Luby and deterministic MIS runs produce feasible schedules of the
    /// same instance and both certificates bound both profits.
    #[test]
    fn luby_and_deterministic_agree_on_feasibility(seed in any::<u64>()) {
        let p = random_tree_problem(seed, 16, 2, 12, true);
        let u = p.universe();
        let det = solve_unit_tree(&p, &AlgorithmConfig::deterministic(0.1));
        let luby = solve_unit_tree(&p, &AlgorithmConfig { epsilon: 0.1, mis: MisStrategy::Luby { seed }, seed });
        prop_assert!(det.verify(&u).is_ok());
        prop_assert!(luby.verify(&u).is_ok());
        prop_assert!(det.diagnostics.optimum_upper_bound + 1e-6 >= luby.profit);
        prop_assert!(luby.diagnostics.optimum_upper_bound + 1e-6 >= det.profit);
    }
}
