//! Cross-crate integration tests: full pipelines from workload generation to
//! verified schedules with certificates, across every algorithm.

use netsched::prelude::*;

fn det(epsilon: f64) -> AlgorithmConfig {
    AlgorithmConfig::deterministic(epsilon)
}

#[test]
fn every_named_scenario_runs_end_to_end() {
    for scenario in named_scenarios() {
        match &scenario {
            Scenario::Tree { workload, name, .. } => {
                let problem = workload.build().unwrap();
                let universe = problem.universe();
                let sol = if problem.is_unit_height() {
                    solve_unit_tree(&problem, &det(0.15))
                } else {
                    solve_arbitrary_tree(&problem, &det(0.15))
                };
                sol.verify(&universe)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(sol.profit > 0.0, "{name}: empty schedule");
                assert!(
                    sol.diagnostics.optimum_upper_bound + 1e-6 >= sol.profit,
                    "{name}: certificate below own profit"
                );
            }
            Scenario::Line { workload, name, .. } => {
                let problem = workload.build().unwrap();
                let universe = problem.universe();
                let sol = if problem.is_unit_height() {
                    solve_line_unit(&problem, &det(0.15))
                } else {
                    solve_line_arbitrary(&problem, &det(0.15))
                };
                sol.verify(&universe)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(sol.profit > 0.0, "{name}: empty schedule");
            }
        }
    }
}

#[test]
fn distributed_tree_algorithm_vs_exact_on_small_instances() {
    for seed in 0..5u64 {
        let workload = TreeWorkload {
            vertices: 14,
            networks: 2,
            demands: 10,
            seed,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        let exact = exact_optimum(&universe);
        assert!(exact.complete);

        for (label, sol) in [
            (
                "luby",
                solve_unit_tree(&problem, &AlgorithmConfig::with_epsilon(0.1)),
            ),
            ("deterministic", solve_unit_tree(&problem, &det(0.1))),
            ("sequential", solve_sequential_tree(&problem)),
        ] {
            sol.verify(&universe).unwrap();
            assert!(
                exact.profit + 1e-9 >= sol.profit,
                "seed {seed} {label}: exact {} < solution {}",
                exact.profit,
                sol.profit
            );
            assert!(
                sol.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit,
                "seed {seed} {label}: dual certificate {} below OPT {}",
                sol.diagnostics.optimum_upper_bound,
                exact.profit
            );
            // Empirical ratio within the worst-case guarantee (7 + ε for the
            // distributed runs, 3 for the sequential one).
            if sol.profit > 0.0 {
                let ratio = exact.profit / sol.profit;
                let bound = if label == "sequential" {
                    3.0
                } else {
                    7.0 / 0.9
                };
                assert!(
                    ratio <= bound + 1e-9,
                    "seed {seed} {label}: empirical ratio {ratio} above the bound {bound}"
                );
            }
        }
    }
}

#[test]
fn line_algorithms_vs_exact_and_ps_baseline() {
    for seed in 0..5u64 {
        let workload = LineWorkload {
            timeslots: 24,
            resources: 2,
            demands: 9,
            min_length: 1,
            max_length: 8,
            max_slack: 3,
            seed,
            ..LineWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        let exact = exact_optimum(&universe);
        assert!(exact.complete);

        let ours = solve_line_unit(&problem, &det(0.1));
        let ps = solve_ps_line_unit(&problem, &det(0.1));
        ours.verify(&universe).unwrap();
        ps.verify(&universe).unwrap();
        for (label, sol, bound) in [("ours", &ours, 4.0 / 0.9), ("ps", &ps, 4.0 * 5.1)] {
            assert!(exact.profit + 1e-9 >= sol.profit, "{label} beats OPT?!");
            assert!(
                sol.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit,
                "{label}: invalid certificate"
            );
            if sol.profit > 0.0 {
                assert!(
                    exact.profit / sol.profit <= bound + 1e-9,
                    "{label} ratio too large"
                );
            }
        }
        // The headline claim of Section 7: our guarantee (4 + ε) is a
        // factor-5 improvement over the (20 + ε) of Panconesi–Sozio.
        assert!(ours.diagnostics.lambda >= 0.9 - 1e-9);
        assert!(approximation_bound(RaiseRule::Unit, 3, ours.diagnostics.lambda) <= 4.5);
    }
}

#[test]
fn arbitrary_height_pipeline_with_wide_and_narrow_mix() {
    for seed in 0..3u64 {
        let workload = TreeWorkload {
            vertices: 16,
            networks: 2,
            demands: 14,
            heights: HeightDistribution::Mixed {
                wide_fraction: 0.4,
                min_narrow: 0.1,
            },
            seed,
            ..TreeWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        let sol = solve_arbitrary_tree(&problem, &det(0.1));
        sol.verify(&universe).unwrap();
        let exact = exact_optimum(&universe);
        if exact.complete {
            assert!(exact.profit + 1e-9 >= sol.profit);
            assert!(sol.diagnostics.optimum_upper_bound + 1e-6 >= exact.profit);
            if sol.profit > 0.0 {
                assert!(exact.profit / sol.profit <= (80.0 + 2.0) / 0.9 + 1e-9);
            }
        }
    }
}

#[test]
fn interval_dp_agrees_with_exact_and_bounds_line_algorithms() {
    for seed in 0..4u64 {
        let workload = LineWorkload {
            timeslots: 40,
            resources: 1,
            demands: 14,
            min_length: 2,
            max_length: 10,
            max_slack: 0,
            access_probability: 1.0,
            seed,
            ..LineWorkload::default()
        };
        let problem = workload.build().unwrap();
        let universe = problem.universe();
        let (dp_profit, dp_selection) =
            weighted_interval_optimum(&universe).expect("single resource, fixed intervals");
        assert!(universe.is_feasible(&dp_selection));
        let exact = exact_optimum(&universe);
        assert!(exact.complete);
        assert!((dp_profit - exact.profit).abs() < 1e-9);

        let ours = solve_line_unit(&problem, &det(0.1));
        ours.verify(&universe).unwrap();
        assert!(dp_profit + 1e-9 >= ours.profit);
        assert!(ours.diagnostics.optimum_upper_bound + 1e-6 >= dp_profit);
    }
}

#[test]
fn capacitated_problems_run_through_all_tree_algorithms() {
    let mut problem = TreeProblem::new(8);
    let t = problem
        .add_network(vec![
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(2), VertexId(3)),
            (VertexId(1), VertexId(4)),
            (VertexId(2), VertexId(5)),
            (VertexId(0), VertexId(6)),
            (VertexId(6), VertexId(7)),
        ])
        .unwrap();
    problem.set_capacity(t, 0, 2.0).unwrap();
    problem.set_capacity(t, 1, 0.5).unwrap();
    for (u, v, p, h) in [
        (0usize, 3usize, 5.0, 0.5),
        (4, 5, 4.0, 0.4),
        (6, 2, 3.0, 0.3),
        (7, 3, 2.0, 1.0),
        (0, 7, 1.5, 0.2),
    ] {
        problem
            .add_demand(VertexId::new(u), VertexId::new(v), p, h, vec![t])
            .unwrap();
    }
    let universe = problem.universe();
    let arb = solve_arbitrary_tree(&problem, &det(0.1));
    arb.verify(&universe).unwrap();
    let seq = solve_sequential_tree(&problem);
    seq.verify(&universe).unwrap();
    let exact = exact_optimum(&universe);
    assert!(exact.profit + 1e-9 >= arb.profit.max(seq.profit));
    // The demand of height 1.0 through the capacity-0.5 edge (if its path
    // uses edge 1) can never be scheduled; feasibility checking must have
    // kept it out.
    for &d in &arb.selected {
        let inst = universe.instance(d);
        for e in inst.path.iter() {
            assert!(inst.height <= universe.capacity(GlobalEdge::new(inst.network, e)) + 1e-9);
        }
    }
}

#[test]
fn round_complexity_scales_with_problem_parameters() {
    // Rounds grow roughly with log n · log(1/ε) · log(p_max/p_min) — we
    // check monotone trends rather than constants.
    let base = TreeWorkload {
        vertices: 24,
        networks: 2,
        demands: 30,
        profits: ProfitDistribution::Constant(4.0),
        seed: 3,
        ..TreeWorkload::default()
    };
    let rounds_of = |w: &TreeWorkload, eps: f64| {
        let p = w.build().unwrap();
        solve_unit_tree(&p, &det(eps)).stats.rounds
    };
    // Smaller ε ⇒ more stages ⇒ at least as many rounds.
    let coarse = rounds_of(&base, 0.5);
    let fine = rounds_of(&base, 0.05);
    assert!(fine >= coarse);

    // Wider profit spread ⇒ more steps per stage allowed (and typically
    // used).
    let spread = TreeWorkload {
        profits: ProfitDistribution::PowerOfTwo { exponents: 10 },
        ..base.clone()
    };
    let narrow_spread = rounds_of(&base, 0.1);
    let wide_spread = rounds_of(&spread, 0.1);
    assert!(
        wide_spread + 8 >= narrow_spread,
        "wide profit spread should not reduce rounds drastically"
    );
}
