//! Conformance suite for the unified Solver / Scheduler API.
//!
//! For every solver in the combined [`netsched::registry`] and a spread of
//! seeded workloads, the suite checks the trait contract:
//!
//! * every produced solution passes `verify` against the session universe;
//! * wherever a worst-case guarantee is claimed, the machine-checked
//!   certificate (`certified_ratio`) stays within it;
//! * the [`Scheduler`] session constructs the universe and the layered
//!   decomposition exactly once across repeated solves with different `ε`;
//! * [`Scheduler::portfolio`] returns a verified solution at least as
//!   profitable as every individual registered solver on that instance.

use netsched::prelude::*;

fn tree_workloads() -> Vec<(&'static str, TreeWorkload)> {
    let mut workloads = Vec::new();
    for seed in 0..3u64 {
        workloads.push((
            "tree-unit",
            TreeWorkload {
                vertices: 14,
                networks: 2,
                demands: 10,
                seed,
                ..TreeWorkload::default()
            },
        ));
        workloads.push((
            "tree-narrow",
            TreeWorkload {
                vertices: 12,
                networks: 2,
                demands: 9,
                heights: HeightDistribution::Narrow { min: 0.1 },
                seed: seed + 10,
                ..TreeWorkload::default()
            },
        ));
        workloads.push((
            "tree-mixed",
            TreeWorkload {
                vertices: 12,
                networks: 2,
                demands: 9,
                heights: HeightDistribution::Mixed {
                    wide_fraction: 0.4,
                    min_narrow: 0.1,
                },
                seed: seed + 20,
                ..TreeWorkload::default()
            },
        ));
    }
    workloads
}

fn line_workloads() -> Vec<(&'static str, LineWorkload)> {
    let mut workloads = Vec::new();
    for seed in 0..3u64 {
        workloads.push((
            "line-unit",
            LineWorkload {
                timeslots: 24,
                resources: 2,
                demands: 9,
                min_length: 1,
                max_length: 8,
                max_slack: 3,
                seed,
                ..LineWorkload::default()
            },
        ));
        workloads.push((
            "line-narrow",
            LineWorkload {
                timeslots: 24,
                resources: 2,
                demands: 9,
                min_length: 1,
                max_length: 8,
                max_slack: 2,
                heights: HeightDistribution::Narrow { min: 0.1 },
                seed: seed + 10,
                ..LineWorkload::default()
            },
        ));
        workloads.push((
            "line-fixed-intervals",
            LineWorkload {
                timeslots: 32,
                resources: 1,
                demands: 10,
                min_length: 2,
                max_length: 8,
                max_slack: 0,
                access_probability: 1.0,
                seed: seed + 20,
                ..LineWorkload::default()
            },
        ));
        workloads.push((
            "line-mixed",
            LineWorkload {
                timeslots: 24,
                resources: 2,
                demands: 9,
                min_length: 1,
                max_length: 8,
                max_slack: 2,
                heights: HeightDistribution::Mixed {
                    wide_fraction: 0.3,
                    min_narrow: 0.1,
                },
                seed: seed + 30,
                ..LineWorkload::default()
            },
        ));
    }
    workloads
}

/// Checks the trait contract for every supporting solver on one session.
fn check_conformance(label: &str, session: &Scheduler<'_>, config: &AlgorithmConfig) {
    let mut supported = 0usize;
    for solver in netsched::registry() {
        if !solver.supports(&session.problem()) {
            continue;
        }
        supported += 1;
        let solution = session.solve_with(solver.as_ref(), config);
        solution
            .verify(session.universe())
            .unwrap_or_else(|e| panic!("{label}/{}: verification failed: {e}", solver.name()));
        if let (Some(guarantee), Some(ratio)) =
            (solver.guarantee(config.epsilon), solution.certified_ratio())
        {
            assert!(
                ratio <= guarantee + 1e-6,
                "{label}/{}: certified ratio {ratio} exceeds the claimed guarantee {guarantee}",
                solver.name()
            );
        }
    }
    assert!(
        supported >= 3,
        "{label}: expected at least the auto solver, a greedy and the exact solver, got {supported}"
    );
}

#[test]
fn every_registry_solver_conforms_on_tree_workloads() {
    let config = AlgorithmConfig::deterministic(0.1);
    for (label, workload) in tree_workloads() {
        let problem = workload.build().unwrap();
        let session = Scheduler::for_tree(&problem);
        check_conformance(label, &session, &config);
    }
}

#[test]
fn every_registry_solver_conforms_on_line_workloads() {
    let config = AlgorithmConfig::deterministic(0.1);
    for (label, workload) in line_workloads() {
        let problem = workload.build().unwrap();
        let session = Scheduler::for_line(&problem);
        check_conformance(label, &session, &config);
    }
}

#[test]
fn session_reuses_universe_and_decomposition_across_epsilons() {
    let workload = TreeWorkload {
        vertices: 24,
        networks: 2,
        demands: 20,
        seed: 7,
        ..TreeWorkload::default()
    };
    let problem = workload.build().unwrap();
    let session = Scheduler::for_tree(&problem);

    let coarse = session.solve(&AlgorithmConfig::deterministic(0.25));
    let fine = session.solve(&AlgorithmConfig::deterministic(0.05));
    coarse.verify(session.universe()).unwrap();
    fine.verify(session.universe()).unwrap();

    let counts = session.build_counts();
    assert_eq!(counts.universe, 1, "universe must be built exactly once");
    assert_eq!(
        counts.layering, 1,
        "decomposition must be built exactly once"
    );
    // Finer ε ⇒ more stages per epoch ⇒ at least as tight slackness.
    assert!(fine.diagnostics.stages_per_epoch >= coarse.diagnostics.stages_per_epoch);
    assert!(fine.diagnostics.lambda >= 0.95 - 1e-9);

    // The same holds on a line session, including the wide/narrow split.
    let workload = LineWorkload {
        timeslots: 32,
        resources: 2,
        demands: 16,
        heights: HeightDistribution::Mixed {
            wide_fraction: 0.4,
            min_narrow: 0.1,
        },
        seed: 3,
        ..LineWorkload::default()
    };
    let problem = workload.build().unwrap();
    let session = Scheduler::for_line(&problem);
    let a = session.solve(&AlgorithmConfig::deterministic(0.2));
    let b = session.solve(&AlgorithmConfig::deterministic(0.1));
    a.verify(session.universe()).unwrap();
    b.verify(session.universe()).unwrap();
    let counts = session.build_counts();
    assert_eq!(counts.universe, 1);
    assert_eq!(
        counts.layering, 0,
        "arbitrary-height solver uses only the split layerings"
    );
    assert_eq!(
        counts.split, 1,
        "wide/narrow split must be built exactly once"
    );
}

#[test]
fn portfolio_dominates_every_individual_solver() {
    let config = AlgorithmConfig::deterministic(0.1);

    let tree = TreeWorkload {
        vertices: 14,
        networks: 2,
        demands: 10,
        seed: 11,
        ..TreeWorkload::default()
    }
    .build()
    .unwrap();
    let session = Scheduler::for_tree(&tree);
    let portfolio = session.portfolio(&netsched::registry(), &config);
    let best = portfolio.best().expect("verified best run");
    best.solution.verify(session.universe()).unwrap();
    for run in &portfolio.runs {
        assert!(run.verified, "{} failed verification", run.name);
        assert!(
            best.solution.profit + 1e-9 >= run.solution.profit,
            "portfolio best ({}) is beaten by {}",
            best.name,
            run.name
        );
    }
    // The exact solver participates on this small instance, so the best
    // verified run is the true optimum.
    assert!(portfolio.runs.iter().any(|r| r.name == "exact"));
    let exact = exact_optimum(session.universe());
    assert!((best.solution.profit - exact.profit).abs() < 1e-9);

    let line = LineWorkload {
        timeslots: 24,
        resources: 2,
        demands: 9,
        min_length: 1,
        max_length: 8,
        max_slack: 3,
        seed: 5,
        ..LineWorkload::default()
    }
    .build()
    .unwrap();
    let session = Scheduler::for_line(&line);
    let portfolio = session.portfolio(&netsched::registry(), &config);
    let best = portfolio.best().expect("verified best run");
    for run in &portfolio.runs {
        assert!(best.solution.profit + 1e-9 >= run.solution.profit);
    }
    assert_eq!(session.build_counts().universe, 1);
}

#[test]
fn auto_selection_matches_workload_shapes() {
    let unit = TreeWorkload {
        vertices: 10,
        networks: 1,
        demands: 5,
        seed: 1,
        ..TreeWorkload::default()
    }
    .build()
    .unwrap();
    assert_eq!(Scheduler::for_tree(&unit).auto_solver().name(), "tree-unit");

    let narrow = TreeWorkload {
        vertices: 10,
        networks: 1,
        demands: 5,
        heights: HeightDistribution::Narrow { min: 0.1 },
        seed: 1,
        ..TreeWorkload::default()
    }
    .build()
    .unwrap();
    assert_eq!(
        Scheduler::for_tree(&narrow).auto_solver().name(),
        "tree-narrow"
    );

    let line = LineWorkload {
        timeslots: 16,
        resources: 1,
        demands: 6,
        seed: 1,
        ..LineWorkload::default()
    }
    .build()
    .unwrap();
    assert_eq!(Scheduler::for_line(&line).auto_solver().name(), "line-unit");
}

#[test]
fn free_function_wrappers_agree_with_the_session_api() {
    let config = AlgorithmConfig::deterministic(0.1);
    let tree = TreeWorkload {
        vertices: 16,
        networks: 2,
        demands: 12,
        seed: 2,
        ..TreeWorkload::default()
    }
    .build()
    .unwrap();
    let wrapper = solve_unit_tree(&tree, &config);
    let session = Scheduler::for_tree(&tree);
    let direct = session.solve_with(&UnitTreeSolver, &config);
    assert_eq!(wrapper.selected, direct.selected);
    assert_eq!(wrapper.profit, direct.profit);

    let line = LineWorkload {
        timeslots: 24,
        resources: 2,
        demands: 10,
        seed: 2,
        ..LineWorkload::default()
    }
    .build()
    .unwrap();
    let wrapper = solve_line_unit(&line, &config);
    let session = Scheduler::for_line(&line);
    let direct = session.solve_with(&LineUnitSolver, &config);
    assert_eq!(wrapper.selected, direct.selected);
    assert_eq!(wrapper.profit, direct.profit);
}
