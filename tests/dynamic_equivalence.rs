//! Differential invariant suite of the dynamic serving subsystem.
//!
//! The contract of `netsched-service` is that incrementality is purely a
//! cost optimization: after **any** sequence of arrive/expire batches, the
//! session's incrementally maintained conflict graph must be byte-identical
//! to — and its schedule and dual certificate equal to — a from-scratch
//! `Scheduler` built over the same surviving demand set, at every thread
//! count. These tests replay generated and randomized traces, rebuilding
//! the reference from scratch after every epoch.

use netsched_core::{AlgorithmConfig, Scheduler, Solution};
use netsched_distrib::{ConflictGraph, MisStrategy};
use netsched_graph::{InstanceId, LineProblem, NetworkId, TreeProblem, VertexId};
use netsched_service::{DemandEvent, DemandRequest, DemandTicket, ServiceSession};
use netsched_workloads::{
    many_networks_line, many_networks_tree, poisson_arrivals_line, poisson_arrivals_tree,
    ChurnSpec, EventTrace, HeightDistribution, TraceEvent,
};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new().num_threads(n).build_global().ok();
    let out = f();
    ThreadPoolBuilder::new().num_threads(0).build_global().ok();
    out
}

/// Byte-level equality of the incremental merged CSR and the flat build.
fn assert_same_graph(a: &ConflictGraph, b: &ConflictGraph, label: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{label}: vertex count");
    assert_eq!(a.num_edges(), b.num_edges(), "{label}: edge count");
    for v in 0..a.num_vertices() {
        let d = InstanceId::new(v);
        assert_eq!(a.neighbors(d), b.neighbors(d), "{label}: adjacency of {d}");
    }
}

/// Exact equality of everything the solution certifies.
fn assert_same_solution(a: &Solution, b: &Solution, label: &str) {
    assert_eq!(a.selected, b.selected, "{label}: schedule");
    assert_eq!(a.raised_instances, b.raised_instances, "{label}: raised");
    assert_eq!(a.profit, b.profit, "{label}: profit");
    let (da, db) = (a.diagnostics, b.diagnostics);
    assert_eq!(da.lambda, db.lambda, "{label}: lambda");
    assert_eq!(da.dual_objective, db.dual_objective, "{label}: dual");
    assert_eq!(da.steps, db.steps, "{label}: steps");
    assert_eq!(
        da.optimum_upper_bound, db.optimum_upper_bound,
        "{label}: upper bound"
    );
}

/// A from-scratch mirror of the live demand set, driven by the same trace
/// events the session consumes. Tracks demands by global arrival index.
enum Mirror {
    Tree {
        base: TreeProblem,
        live: Vec<(usize, TraceEvent)>,
    },
    Line {
        base: LineProblem,
        live: Vec<(usize, TraceEvent)>,
    },
}

impl Mirror {
    fn for_tree(problem: &TreeProblem) -> Self {
        let mut base = TreeProblem::new(problem.num_vertices());
        for t in 0..problem.num_networks() {
            let network = NetworkId::new(t);
            let edges = problem.network(network).edges().map(|(_, uv)| uv).collect();
            let id = base.add_network(edges).unwrap();
            for (e, &cap) in problem.capacities(network).iter().enumerate() {
                if (cap - 1.0).abs() > f64::EPSILON {
                    base.set_capacity(id, e, cap).unwrap();
                }
            }
        }
        let live = problem
            .demands()
            .iter()
            .map(|d| {
                (
                    d.id.index(),
                    TraceEvent::ArriveTree {
                        u: d.u,
                        v: d.v,
                        profit: d.profit,
                        height: d.height,
                        access: problem.access(d.id).to_vec(),
                    },
                )
            })
            .collect();
        Mirror::Tree { base, live }
    }

    fn for_line(problem: &LineProblem) -> Self {
        let base = LineProblem::new(problem.timeslots(), problem.num_resources());
        let live = problem
            .demands()
            .iter()
            .map(|d| {
                (
                    d.id.index(),
                    TraceEvent::ArriveLine {
                        release: d.release,
                        deadline: d.deadline,
                        processing: d.processing,
                        profit: d.profit,
                        height: d.height,
                        access: problem.access(d.id).to_vec(),
                    },
                )
            })
            .collect();
        Mirror::Line { base, live }
    }

    fn apply(&mut self, batch: &[TraceEvent], next_arrival: &mut usize) {
        let live = match self {
            Mirror::Tree { live, .. } | Mirror::Line { live, .. } => live,
        };
        for event in batch {
            match event {
                TraceEvent::Expire { arrival } => {
                    let pos = live
                        .iter()
                        .position(|(a, _)| a == arrival)
                        .expect("mirror expires a live arrival");
                    live.remove(pos);
                }
                arrive => {
                    live.push((*next_arrival, arrive.clone()));
                    *next_arrival += 1;
                }
            }
        }
    }

    /// The surviving demand set as a fresh problem, demands in arrival
    /// order — exactly the from-scratch rebuild the invariant names.
    fn rebuild(&self) -> RebuiltProblem {
        match self {
            Mirror::Tree { base, live } => {
                let mut p = base.clone();
                for (_, event) in live {
                    if let TraceEvent::ArriveTree {
                        u,
                        v,
                        profit,
                        height,
                        access,
                    } = event
                    {
                        p.add_demand(*u, *v, *profit, *height, access.clone())
                            .unwrap();
                    }
                }
                RebuiltProblem::Tree(p)
            }
            Mirror::Line { base, live } => {
                let mut p = base.clone();
                for (_, event) in live {
                    if let TraceEvent::ArriveLine {
                        release,
                        deadline,
                        processing,
                        profit,
                        height,
                        access,
                    } = event
                    {
                        p.add_demand(
                            *release,
                            *deadline,
                            *processing,
                            *profit,
                            *height,
                            access.clone(),
                        )
                        .unwrap();
                    }
                }
                RebuiltProblem::Line(p)
            }
        }
    }
}

enum RebuiltProblem {
    Tree(TreeProblem),
    Line(LineProblem),
}

impl RebuiltProblem {
    fn solve(&self, config: &AlgorithmConfig) -> (Solution, ConflictGraph) {
        match self {
            RebuiltProblem::Tree(p) => {
                let flat = ConflictGraph::build(&p.universe());
                (Scheduler::for_tree(p).solve(config), flat)
            }
            RebuiltProblem::Line(p) => {
                let flat = ConflictGraph::build(&p.universe());
                (Scheduler::for_line(p).solve(config), flat)
            }
        }
    }
}

fn to_events(batch: &[TraceEvent], tickets: &[DemandTicket]) -> Vec<DemandEvent> {
    batch
        .iter()
        .map(|event| match event {
            TraceEvent::ArriveTree {
                u,
                v,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(DemandRequest::Tree {
                u: *u,
                v: *v,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::ArriveLine {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(DemandRequest::Line {
                release: *release,
                deadline: *deadline,
                processing: *processing,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
        })
        .collect()
}

/// Replays a trace epoch by epoch, asserting the differential invariant
/// after every epoch: merged CSR byte-identical to the flat build of the
/// rebuilt universe, schedule and certificate equal to a from-scratch
/// `Scheduler` solve.
fn check_trace(
    mut session: ServiceSession,
    mut mirror: Mirror,
    trace: &EventTrace,
    config: &AlgorithmConfig,
    label: &str,
) {
    let mut tickets: Vec<DemandTicket> = session.live_tickets();
    let mut next_arrival = tickets.len();
    for (epoch, batch) in trace.batches.iter().enumerate() {
        let events = to_events(batch, &tickets);
        let delta = session
            .step(&events)
            .unwrap_or_else(|e| panic!("{label} epoch {epoch}: {e}"));
        tickets.extend(delta.tickets.iter().copied());
        mirror.apply(batch, &mut next_arrival);

        let label = format!("{label} epoch {epoch}");
        let rebuilt = mirror.rebuild();
        let (reference, flat) = rebuilt.solve(config);
        assert_same_graph(&flat, &session.conflict().merged(), &label);
        let ours = session.last_solution().expect("stepped sessions solved");
        assert_same_solution(&reference, ours, &label);
        assert_eq!(delta.profit, reference.profit, "{label}: delta profit");
        assert_eq!(
            delta.stats.live_demands,
            session.live_demands(),
            "{label}: live count"
        );
        // The standing schedule and the solution agree.
        assert_eq!(session.schedule().len(), ours.selected.len(), "{label}");
    }
}

fn line_trace(networks: usize, demands: usize, seed: u64, churn: f64) -> (LineProblem, EventTrace) {
    line_trace_with_heights(networks, demands, seed, churn, HeightDistribution::Unit)
}

fn line_trace_with_heights(
    networks: usize,
    demands: usize,
    seed: u64,
    churn: f64,
    heights: HeightDistribution,
) -> (LineProblem, EventTrace) {
    let mut base = many_networks_line(networks, demands, seed);
    base.heights = heights;
    let trace = poisson_arrivals_line(
        &base,
        &ChurnSpec {
            epochs: 8,
            churn,
            focus: 2,
            seed: seed ^ 0xD15EA5E,
        },
    );
    (base.build().unwrap(), trace)
}

fn tree_trace(
    networks: usize,
    demands: usize,
    seed: u64,
    churn: f64,
    heights: HeightDistribution,
) -> (TreeProblem, EventTrace) {
    let mut base = many_networks_tree(networks, demands, seed);
    base.heights = heights;
    let trace = poisson_arrivals_tree(
        &base,
        &ChurnSpec {
            epochs: 8,
            churn,
            focus: 2,
            seed: seed ^ 0xFEED,
        },
    );
    (base.build().unwrap(), trace)
}

#[test]
fn line_sessions_match_from_scratch_rebuilds_at_every_thread_count() {
    let (problem, trace) = line_trace(4, 30, 11, 0.2);
    for threads in [1usize, 2, 4] {
        for config in [
            AlgorithmConfig::deterministic(0.1),
            AlgorithmConfig {
                epsilon: 0.1,
                mis: MisStrategy::Luby { seed: 77 },
                seed: 77,
            },
        ] {
            with_threads(threads, || {
                let session = ServiceSession::for_line(&problem, config);
                let mirror = Mirror::for_line(&problem);
                check_trace(
                    session,
                    mirror,
                    &trace,
                    &config,
                    &format!("line @ {threads} threads / {:?}", config.mis),
                );
            });
        }
    }
}

#[test]
fn tree_sessions_match_from_scratch_rebuilds_at_every_thread_count() {
    let (problem, trace) = tree_trace(4, 28, 5, 0.2, HeightDistribution::Unit);
    let config = AlgorithmConfig::deterministic(0.1);
    for threads in [1usize, 2, 4] {
        with_threads(threads, || {
            let session = ServiceSession::for_tree(&problem, config);
            let mirror = Mirror::for_tree(&problem);
            check_trace(
                session,
                mirror,
                &trace,
                &config,
                &format!("tree @ {threads} threads"),
            );
        });
    }
}

#[test]
fn mixed_height_line_sessions_exercise_the_incremental_split() {
    // The line counterpart of the tree split test: mixed heights route
    // line sessions through `line_subproblem`-shaped split cores (each
    // with its own L_min length-histogram maintenance) and the
    // Theorem 7.2 combination; the reference path must agree epoch for
    // epoch.
    let (problem, trace) = line_trace_with_heights(
        3,
        22,
        29,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    let config = AlgorithmConfig::deterministic(0.1);
    let session = ServiceSession::for_line(&problem, config);
    check_trace(
        session,
        Mirror::for_line(&problem),
        &trace,
        &config,
        "mixed-line",
    );
}

#[test]
fn near_overflow_line_windows_are_rejected_not_admitted() {
    // `release + processing` is evaluated in u64 by the shared
    // validate_demand: a crafted request whose u32 sum wraps must come
    // back as a ServiceError at admission, leaving the session untouched
    // (previously it validated in wrapped u32 arithmetic, which would
    // have spliced a bogus instance before panicking).
    let (problem, _) = line_trace(3, 10, 41, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = ServiceSession::for_line(&problem, config);
    session.step(&[]).unwrap();
    let epoch = session.epoch();
    let result = session.step(&[DemandEvent::Arrive(DemandRequest::Line {
        release: 1,
        deadline: 5,
        processing: u32::MAX,
        profit: 1.0,
        height: 1.0,
        access: vec![NetworkId::new(0)],
    })]);
    assert!(result.is_err(), "wrapping window must be rejected");
    assert_eq!(session.epoch(), epoch);
}

#[test]
fn mixed_height_sessions_exercise_the_incremental_split() {
    // Mixed heights force the wide/narrow split cores: their universes,
    // CSRs and layerings are maintained incrementally too, and the
    // reference path (Scheduler's cached split + solve_wide_narrow) must
    // agree epoch for epoch.
    let (problem, trace) = tree_trace(
        3,
        24,
        17,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    let config = AlgorithmConfig::deterministic(0.1);
    let session = ServiceSession::for_tree(&problem, config);
    check_trace(
        session,
        Mirror::for_tree(&problem),
        &trace,
        &config,
        "mixed",
    );
}

#[test]
fn capacitated_sessions_stay_equivalent() {
    let (mut problem, trace) = tree_trace(3, 20, 23, 0.2, HeightDistribution::Narrow { min: 0.2 });
    for t in 0..problem.num_networks() {
        for e in (0..60).step_by(7) {
            problem
                .set_capacity(NetworkId::new(t), e, 1.5 + (e % 3) as f64 * 0.5)
                .unwrap();
        }
    }
    assert!(!problem.universe().is_uniform_capacity());
    let config = AlgorithmConfig::deterministic(0.1);
    let session = ServiceSession::for_tree(&problem, config);
    check_trace(
        session,
        Mirror::for_tree(&problem),
        &trace,
        &config,
        "capacitated",
    );
}

#[test]
fn empty_batch_epochs_are_true_no_ops() {
    let (problem, _) = line_trace(3, 15, 3, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = ServiceSession::for_line(&problem, config);

    // First step solves even with an empty batch.
    let first = session.step(&[]).unwrap();
    assert!(first.stats.resolved);
    assert!(!first.admitted.is_empty(), "initial demands get scheduled");
    let generation = session.conflict().generation();
    let profit = session.profit();

    // Subsequent empty batches: no rebuild, no solve, nothing changes.
    let quiet = session.step(&[]).unwrap();
    assert!(!quiet.stats.resolved);
    assert!(quiet.is_quiet());
    assert_eq!(quiet.profit, profit);
    assert_eq!(quiet.stats.dirty_shards, 0);
    assert_eq!(session.conflict().generation(), generation);
    assert_eq!(quiet.epoch, 2);
}

#[test]
fn expiring_everything_empties_the_schedule_and_recovers() {
    let (problem, _) = line_trace(3, 12, 9, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = ServiceSession::for_line(&problem, config);
    session.step(&[]).unwrap();
    assert!(session.profit() > 0.0);

    let everyone: Vec<DemandEvent> = session
        .live_tickets()
        .into_iter()
        .map(DemandEvent::Expire)
        .collect();
    let delta = session.step(&everyone).unwrap();
    assert_eq!(session.live_demands(), 0);
    assert_eq!(session.universe().num_instances(), 0);
    assert_eq!(delta.profit, 0.0);
    assert!(session.schedule().is_empty());
    // Expired demands are not re-reported as evictions.
    assert!(delta.evicted.is_empty());
    let merged = session.conflict().merged();
    assert_eq!(merged.num_vertices(), 0);
    assert_eq!(merged.num_edges(), 0);

    // The session keeps serving: a fresh arrival gets scheduled.
    let delta = session
        .step(&[DemandEvent::Arrive(DemandRequest::Line {
            release: 0,
            deadline: 10,
            processing: 4,
            profit: 5.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })])
        .unwrap();
    assert_eq!(delta.admitted.len(), 1);
    assert_eq!(session.profit(), 5.0);
}

#[test]
fn invalid_batches_leave_the_session_untouched() {
    let (problem, _) = line_trace(3, 10, 13, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = ServiceSession::for_line(&problem, config);
    session.step(&[]).unwrap();
    let profit = session.profit();
    let epoch = session.epoch();
    let generation = session.conflict().generation();

    // Unknown ticket, invalid window, duplicate expiry: all rejected with
    // no state change — even when valid events precede them in the batch.
    let valid_arrival = DemandEvent::Arrive(DemandRequest::Line {
        release: 0,
        deadline: 8,
        processing: 2,
        profit: 1.0,
        height: 1.0,
        access: vec![NetworkId::new(0)],
    });
    let t0 = session.live_tickets()[0];
    for bad in [
        DemandEvent::Expire(DemandTicket(u64::MAX)),
        DemandEvent::Arrive(DemandRequest::Line {
            release: 5,
            deadline: 3,
            processing: 2,
            profit: 1.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        }),
        DemandEvent::Arrive(DemandRequest::Tree {
            u: VertexId(0),
            v: VertexId(1),
            profit: 1.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        }),
    ] {
        let batch = vec![valid_arrival.clone(), bad];
        assert!(session.step(&batch).is_err());
        assert_eq!(session.profit(), profit);
        assert_eq!(session.epoch(), epoch);
        assert_eq!(session.conflict().generation(), generation);
    }
    assert!(session
        .step(&[DemandEvent::Expire(t0), DemandEvent::Expire(t0)])
        .is_err());
    assert_eq!(session.epoch(), epoch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_line_traces_preserve_the_invariant(
        seed in any::<u64>(),
        demands in 10usize..24,
        networks in 2usize..5,
        churn_pct in 5u32..40,
        wide_pct in 0u32..=100,
    ) {
        let heights = if wide_pct == 100 {
            HeightDistribution::Unit
        } else {
            HeightDistribution::Mixed { wide_fraction: wide_pct as f64 / 100.0, min_narrow: 0.1 }
        };
        let (problem, trace) =
            line_trace_with_heights(networks, demands, seed, churn_pct as f64 / 100.0, heights);
        let config = AlgorithmConfig::deterministic(0.12);
        let session = ServiceSession::for_line(&problem, config);
        check_trace(session, Mirror::for_line(&problem), &trace, &config, "proptest-line");
    }

    #[test]
    fn random_tree_traces_preserve_the_invariant(
        seed in any::<u64>(),
        demands in 10usize..22,
        networks in 2usize..5,
        churn_pct in 5u32..40,
        wide_pct in 0u32..=100,
    ) {
        let heights = if wide_pct == 100 {
            HeightDistribution::Unit
        } else {
            HeightDistribution::Mixed { wide_fraction: wide_pct as f64 / 100.0, min_narrow: 0.1 }
        };
        let (problem, trace) = tree_trace(networks, demands, seed, churn_pct as f64 / 100.0, heights);
        let config = AlgorithmConfig::deterministic(0.12);
        let session = ServiceSession::for_tree(&problem, config);
        check_trace(session, Mirror::for_tree(&problem), &trace, &config, "proptest-tree");
    }
}
