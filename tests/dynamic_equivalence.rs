//! Differential invariant suite of the dynamic serving subsystem.
//!
//! The contract of `netsched-service` in [`ResolveMode::Cold`] is that
//! incrementality is purely a cost optimization: after **any** sequence of
//! arrive/expire batches, the session's incrementally maintained conflict
//! graph must be byte-identical to — and its schedule and dual certificate
//! equal to — a from-scratch `Scheduler` built over the same surviving
//! demand set, at every thread count. These tests replay generated and
//! randomized traces, rebuilding the reference from scratch after every
//! epoch. Sessions are pinned to `Cold` explicitly, so the suite keeps
//! anchoring the byte-equivalence contract even when the environment
//! (`NETSCHED_RESOLVE_MODE=warm`, the CI warm matrix leg) flips the
//! default mode; the relaxed warm contract has its own suite in
//! `tests/warm_equivalence.rs`.
//!
//! The randomized traces bind a [`common::ChurnCase`] — the event trace
//! itself is the proptest strategy value, so a failing trace shrinks to a
//! minimal event sequence instead of regenerating from a seed.

mod common;

use common::{
    check_trace, line_trace, line_trace_with_heights, tree_trace, with_threads, ChurnCase,
    ChurnCases, ChurnShape, Mirror,
};
use netsched_core::AlgorithmConfig;
use netsched_distrib::MisStrategy;
use netsched_graph::{NetworkId, VertexId};
use netsched_service::{DemandEvent, DemandRequest, DemandTicket, ResolveMode, ServiceSession};
use netsched_workloads::HeightDistribution;
use proptest::prelude::*;

/// A session pinned to the byte-equivalence contract.
fn cold_line(problem: &netsched_graph::LineProblem, config: AlgorithmConfig) -> ServiceSession {
    ServiceSession::for_line(problem, config).with_resolve_mode(ResolveMode::Cold)
}

fn cold_tree(problem: &netsched_graph::TreeProblem, config: AlgorithmConfig) -> ServiceSession {
    ServiceSession::for_tree(problem, config).with_resolve_mode(ResolveMode::Cold)
}

#[test]
fn line_sessions_match_from_scratch_rebuilds_at_every_thread_count() {
    let (problem, trace) = line_trace(4, 30, 11, 0.2);
    for threads in [1usize, 2, 4] {
        for config in [
            AlgorithmConfig::deterministic(0.1),
            AlgorithmConfig {
                epsilon: 0.1,
                mis: MisStrategy::Luby { seed: 77 },
                seed: 77,
            },
        ] {
            with_threads(threads, || {
                let session = cold_line(&problem, config);
                let mirror = Mirror::for_line(&problem);
                check_trace(
                    session,
                    mirror,
                    &trace,
                    &config,
                    &format!("line @ {threads} threads / {:?}", config.mis),
                );
            });
        }
    }
}

#[test]
fn tree_sessions_match_from_scratch_rebuilds_at_every_thread_count() {
    let (problem, trace) = tree_trace(4, 28, 5, 0.2, HeightDistribution::Unit);
    let config = AlgorithmConfig::deterministic(0.1);
    for threads in [1usize, 2, 4] {
        with_threads(threads, || {
            let session = cold_tree(&problem, config);
            let mirror = Mirror::for_tree(&problem);
            check_trace(
                session,
                mirror,
                &trace,
                &config,
                &format!("tree @ {threads} threads"),
            );
        });
    }
}

#[test]
fn mixed_height_line_sessions_exercise_the_incremental_split() {
    // The line counterpart of the tree split test: mixed heights route
    // line sessions through `line_subproblem`-shaped split cores (each
    // with its own L_min length-histogram maintenance) and the
    // Theorem 7.2 combination; the reference path must agree epoch for
    // epoch.
    let (problem, trace) = line_trace_with_heights(
        3,
        22,
        29,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    let config = AlgorithmConfig::deterministic(0.1);
    let session = cold_line(&problem, config);
    check_trace(
        session,
        Mirror::for_line(&problem),
        &trace,
        &config,
        "mixed-line",
    );
}

#[test]
fn near_overflow_line_windows_are_rejected_not_admitted() {
    // `release + processing` is evaluated in u64 by the shared
    // validate_demand: a crafted request whose u32 sum wraps must come
    // back as a ServiceError at admission, leaving the session untouched
    // (previously it validated in wrapped u32 arithmetic, which would
    // have spliced a bogus instance before panicking).
    let (problem, _) = line_trace(3, 10, 41, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = cold_line(&problem, config);
    session.step(&[]).unwrap();
    let epoch = session.epoch();
    let result = session.step(&[DemandEvent::Arrive(DemandRequest::Line {
        release: 1,
        deadline: 5,
        processing: u32::MAX,
        profit: 1.0,
        height: 1.0,
        access: vec![NetworkId::new(0)],
    })]);
    assert!(result.is_err(), "wrapping window must be rejected");
    assert_eq!(session.epoch(), epoch);
}

#[test]
fn mixed_height_sessions_exercise_the_incremental_split() {
    // Mixed heights force the wide/narrow split cores: their universes,
    // CSRs and layerings are maintained incrementally too, and the
    // reference path (Scheduler's cached split + solve_wide_narrow) must
    // agree epoch for epoch.
    let (problem, trace) = tree_trace(
        3,
        24,
        17,
        0.25,
        HeightDistribution::Mixed {
            wide_fraction: 0.5,
            min_narrow: 0.1,
        },
    );
    let config = AlgorithmConfig::deterministic(0.1);
    let session = cold_tree(&problem, config);
    check_trace(
        session,
        Mirror::for_tree(&problem),
        &trace,
        &config,
        "mixed",
    );
}

#[test]
fn capacitated_sessions_stay_equivalent() {
    let (mut problem, trace) = tree_trace(3, 20, 23, 0.2, HeightDistribution::Narrow { min: 0.2 });
    for t in 0..problem.num_networks() {
        for e in (0..60).step_by(7) {
            problem
                .set_capacity(NetworkId::new(t), e, 1.5 + (e % 3) as f64 * 0.5)
                .unwrap();
        }
    }
    assert!(!problem.universe().is_uniform_capacity());
    let config = AlgorithmConfig::deterministic(0.1);
    let session = cold_tree(&problem, config);
    check_trace(
        session,
        Mirror::for_tree(&problem),
        &trace,
        &config,
        "capacitated",
    );
}

#[test]
fn empty_batch_epochs_are_true_no_ops() {
    let (problem, _) = line_trace(3, 15, 3, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = cold_line(&problem, config);

    // First step solves even with an empty batch.
    let first = session.step(&[]).unwrap();
    assert!(first.stats.resolved);
    assert!(!first.stats.warm_resolve);
    assert!(!first.admitted.is_empty(), "initial demands get scheduled");
    let generation = session.conflict().generation();
    let profit = session.profit();

    // Subsequent empty batches: no rebuild, no solve, nothing changes.
    let quiet = session.step(&[]).unwrap();
    assert!(!quiet.stats.resolved);
    assert!(quiet.is_quiet());
    assert_eq!(quiet.profit, profit);
    assert_eq!(quiet.stats.dirty_shards, 0);
    assert_eq!(session.conflict().generation(), generation);
    assert_eq!(quiet.epoch, 2);
}

#[test]
fn expiring_everything_empties_the_schedule_and_recovers() {
    let (problem, _) = line_trace(3, 12, 9, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = cold_line(&problem, config);
    session.step(&[]).unwrap();
    assert!(session.profit() > 0.0);

    let everyone: Vec<DemandEvent> = session
        .live_tickets()
        .into_iter()
        .map(DemandEvent::Expire)
        .collect();
    let delta = session.step(&everyone).unwrap();
    assert_eq!(session.live_demands(), 0);
    assert_eq!(session.universe().num_instances(), 0);
    assert_eq!(delta.profit, 0.0);
    assert!(session.schedule().is_empty());
    // Expired demands are not re-reported as evictions.
    assert!(delta.evicted.is_empty());
    let merged = session.conflict().merged();
    assert_eq!(merged.num_vertices(), 0);
    assert_eq!(merged.num_edges(), 0);

    // The session keeps serving: a fresh arrival gets scheduled.
    let delta = session
        .step(&[DemandEvent::Arrive(DemandRequest::Line {
            release: 0,
            deadline: 10,
            processing: 4,
            profit: 5.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        })])
        .unwrap();
    assert_eq!(delta.admitted.len(), 1);
    assert_eq!(session.profit(), 5.0);
}

#[test]
fn invalid_batches_leave_the_session_untouched() {
    let (problem, _) = line_trace(3, 10, 13, 0.2);
    let config = AlgorithmConfig::deterministic(0.1);
    let mut session = cold_line(&problem, config);
    session.step(&[]).unwrap();
    let profit = session.profit();
    let epoch = session.epoch();
    let generation = session.conflict().generation();

    // Unknown ticket, invalid window, duplicate expiry: all rejected with
    // no state change — even when valid events precede them in the batch.
    let valid_arrival = DemandEvent::Arrive(DemandRequest::Line {
        release: 0,
        deadline: 8,
        processing: 2,
        profit: 1.0,
        height: 1.0,
        access: vec![NetworkId::new(0)],
    });
    let t0 = session.live_tickets()[0];
    for bad in [
        DemandEvent::Expire(DemandTicket(u64::MAX)),
        DemandEvent::Arrive(DemandRequest::Line {
            release: 5,
            deadline: 3,
            processing: 2,
            profit: 1.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        }),
        DemandEvent::Arrive(DemandRequest::Tree {
            u: VertexId(0),
            v: VertexId(1),
            profit: 1.0,
            height: 1.0,
            access: vec![NetworkId::new(0)],
        }),
    ] {
        let batch = vec![valid_arrival.clone(), bad];
        assert!(session.step(&batch).is_err());
        assert_eq!(session.profit(), profit);
        assert_eq!(session.epoch(), epoch);
        assert_eq!(session.conflict().generation(), generation);
    }
    assert!(session
        .step(&[DemandEvent::Expire(t0), DemandEvent::Expire(t0)])
        .is_err());
    assert_eq!(session.epoch(), epoch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_line_traces_preserve_the_invariant(
        case in ChurnCases { shape: ChurnShape::Line },
    ) {
        let case: ChurnCase = case;
        let config = AlgorithmConfig::deterministic(0.12);
        let problem = case.line_problem();
        let session = cold_line(problem, config);
        check_trace(
            session,
            Mirror::for_line(problem),
            &case.trace,
            &config,
            "proptest-line",
        );
    }

    #[test]
    fn random_tree_traces_preserve_the_invariant(
        case in ChurnCases { shape: ChurnShape::Tree },
    ) {
        let case: ChurnCase = case;
        let config = AlgorithmConfig::deterministic(0.12);
        let problem = case.tree_problem();
        let session = cold_tree(problem, config);
        check_trace(
            session,
            Mirror::for_tree(problem),
            &case.trace,
            &config,
            "proptest-tree",
        );
    }
}

#[test]
fn shrinking_churn_cases_keeps_traces_valid() {
    // Every shrink candidate of a sampled case must itself replay
    // cleanly: expiries name live arrivals only, windows stay in range.
    let strategy = ChurnCases {
        shape: ChurnShape::Line,
    };
    let mut rng = proptest::TestRng::for_case("shrink-validity", 0);
    for _ in 0..4 {
        let case = proptest::Strategy::sample(&strategy, &mut rng);
        for candidate in proptest::Strategy::shrink(&strategy, &case) {
            let config = AlgorithmConfig::deterministic(0.2);
            let mut session = cold_line(candidate.line_problem(), config);
            let mut tickets: Vec<DemandTicket> = session.live_tickets();
            for batch in &candidate.trace.batches {
                let events = common::to_events(batch, &tickets);
                let delta = session.step(&events).expect("shrunk trace stays valid");
                tickets.extend(delta.tickets.iter().copied());
            }
        }
    }
}
