//! Property-based tests for the distributed substrate: conflict graphs,
//! communication graphs and Luby's MIS protocol on the synchronous
//! simulator.

use netsched::distrib::{greedy_mis, is_maximal_independent, maximal_independent_set};
use netsched::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_universe(seed: u64, n: usize, r: usize, m: usize) -> DemandInstanceUniverse {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = TreeProblem::new(n);
    let mut nets = Vec::new();
    for _ in 0..r {
        let edges = (1..n)
            .map(|i| (VertexId::new(rng.gen_range(0..i)), VertexId::new(i)))
            .collect();
        nets.push(p.add_network(edges).unwrap());
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        let access: Vec<NetworkId> = nets.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        let access = if access.is_empty() {
            vec![nets[0]]
        } else {
            access
        };
        p.add_unit_demand(VertexId::new(u), VertexId::new(v), 1.0, access)
            .unwrap();
    }
    p.universe()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The conflict graph agrees with the pairwise conflict predicate of the
    /// universe.
    #[test]
    fn conflict_graph_matches_predicate(seed in any::<u64>(), n in 4usize..20, m in 1usize..20) {
        let u = random_universe(seed, n, 2, m);
        let g = ConflictGraph::build(&u);
        prop_assert_eq!(g.num_vertices(), u.num_instances());
        for a in u.instance_ids() {
            for b in u.instance_ids() {
                if a != b {
                    prop_assert_eq!(g.are_conflicting(a, b), u.conflicting(a, b));
                }
            }
        }
        let degree_sum: usize = u.instance_ids().map(|d| g.degree(d)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// Luby's protocol always produces a maximal independent set of the
    /// induced subgraph, regardless of seed and restriction.
    #[test]
    fn luby_always_maximal(seed in any::<u64>(), n in 4usize..24, m in 1usize..30, modulo in 1usize..4) {
        let u = random_universe(seed, n, 2, m);
        let g = ConflictGraph::build(&u);
        let active: Vec<InstanceId> = u.instance_ids().filter(|d| d.index() % modulo == 0).collect();
        let mut stats = RoundStats::new();
        let set = maximal_independent_set(&g, &active, MisStrategy::Luby { seed }, &mut stats);
        prop_assert!(is_maximal_independent(&g, &active, &set));
        // Round accounting: at least one round per MIS unless nothing to do.
        if !active.is_empty() {
            prop_assert!(stats.rounds >= 1);
            prop_assert_eq!(stats.mis_invocations, 1);
        }
        // Luby and greedy may return different sets but both are maximal.
        let gset = greedy_mis(&g, &active);
        prop_assert!(is_maximal_independent(&g, &active, &gset));
    }

    /// The communication graph connects exactly the processor pairs that
    /// share a resource (Section 2's communication rule).
    #[test]
    fn comm_graph_matches_access_sets(seed in any::<u64>(), m in 2usize..20, r in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let processors: Vec<Processor> = (0..m)
            .map(|i| {
                let mut access: Vec<NetworkId> =
                    (0..r).filter(|_| rng.gen_bool(0.5)).map(NetworkId::new).collect();
                if access.is_empty() {
                    access.push(NetworkId::new(rng.gen_range(0..r)));
                }
                Processor::new(ProcessorId::new(i), DemandId::new(i), access)
            })
            .collect();
        let g = CommGraph::build(&processors, r);
        for a in &processors {
            for b in &processors {
                if a.id != b.id {
                    prop_assert_eq!(
                        g.can_communicate(a.id, b.id),
                        a.can_communicate_with(b),
                        "processors {} and {}", a.id, b.id
                    );
                }
            }
        }
    }

    /// Universe feasibility predicates are consistent: an independent set is
    /// always feasible in the unit-height uniform-capacity world, and
    /// `can_add` agrees with `is_feasible` of the extended selection.
    #[test]
    fn feasibility_predicates_are_consistent(seed in any::<u64>(), n in 4usize..16, m in 1usize..16) {
        let u = random_universe(seed, n, 2, m);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        // Build a random feasible selection greedily.
        let mut selection: Vec<InstanceId> = Vec::new();
        let ids: Vec<InstanceId> = u.instance_ids().collect();
        for _ in 0..ids.len() {
            let i = rng.gen_range(0..ids.len());
            let d = ids[i];
            if u.can_add(&selection, d) {
                selection.push(d);
            }
        }
        prop_assert!(u.is_feasible(&selection));
        prop_assert!(u.is_independent_set(&selection));
        // can_add must agree with is_feasible on the extended set.
        for d in u.instance_ids() {
            let mut extended = selection.clone();
            if selection.contains(&d) {
                continue;
            }
            extended.push(d);
            prop_assert_eq!(u.can_add(&selection, d), u.is_feasible(&extended));
        }
    }
}
