//! Allocation regression pin for the dynamic serving splice path.
//!
//! The million-demand scale push moved the per-shard hot structures to
//! arena-backed layouts with persistent reusable scratch; the contract is
//! that a **steady-state clean-shard epoch** — a splice whose delta leaves
//! every shard clean — performs **zero heap allocations** across all three
//! layers (`DemandInstanceUniverse::apply_demand_delta`,
//! `ShardedConflictGraph::apply_delta`, `WarmState::splice`) once the
//! session's scratch buffers have reached steady capacity — including
//! the observability hooks the serving path runs every epoch (disabled
//! spans, pre-resolved histogram/counter/gauge handles). This binary
//! installs a counting global allocator and pins that contract; a
//! regression (a stray `Vec::new` + `push`, a `collect`, a `mem::take`
//! realloc) fails the count assertion rather than silently re-introducing
//! allocator traffic at 10⁵–10⁶ live demands.
//!
//! The test lives alone in this binary: the allocator counter is global,
//! and a concurrently running sibling test would pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use netsched_core::{run_two_phase_warm_on, AlgorithmConfig, RaiseRule, WarmState};
use netsched_decomp::InstanceLayering;
use netsched_distrib::ShardedConflictGraph;
use netsched_graph::{ArrivingDemand, DemandId, EdgePath, NetworkId, UniverseDelta};
use netsched_workloads::many_networks_line;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counts every allocation (fresh, zeroed and growth reallocs) forwarded
/// to the system allocator. Deallocations are free and not counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_clean_shard_splice_epochs_are_allocation_free() {
    let base = many_networks_line(8, 240, 42);
    let timeslots = base.timeslots;
    let problem = base.build().unwrap();
    let mut universe = problem.universe();
    let mut conflict = ShardedConflictGraph::build(&universe);
    let mut warm = WarmState::new(&universe, RaiseRule::Unit);
    let mut delta = UniverseDelta::new();
    let config = AlgorithmConfig::deterministic(0.1);

    // Prime: a solve populates the warm stack and raise records, churn
    // epochs push every layer's scratch to its steady capacity.
    let layering = InstanceLayering::line_length_classes(&universe);
    run_two_phase_warm_on(
        &universe,
        &conflict,
        &layering,
        RaiseRule::Unit,
        &config,
        &mut warm,
    );
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4 {
        let m = universe.num_demands();
        let mut expired = vec![
            DemandId::new(rng.gen_range(0..m)),
            DemandId::new(rng.gen_range(0..m)),
        ];
        expired.sort_unstable();
        expired.dedup();
        let start = rng.gen_range(0..timeslots - 6);
        let arrival = ArrivingDemand {
            profit: rng.gen_range(1.0..8.0),
            height: 1.0,
            instances: vec![(
                NetworkId::new(rng.gen_range(0..universe.num_networks())),
                EdgePath::interval(start as usize, start as usize + 4),
                Some(start),
            )],
        };
        universe.apply_demand_delta(&expired, &[arrival], &mut delta);
        conflict.apply_delta(&universe, &delta);
        warm.splice(&universe, &delta);
    }
    // Settle: clean epochs let every clear/resize reach its fixed point
    // before measurement starts.
    for _ in 0..2 {
        universe.apply_demand_delta(&[], &[], &mut delta);
        conflict.apply_delta(&universe, &delta);
        warm.splice(&universe, &delta);
    }

    // The serving path's observability hooks ride inside the same loop:
    // with tracing disabled, a span is one relaxed atomic load and the
    // pre-resolved metric handles are pure atomics — none of it may touch
    // the heap either. Handles are resolved (and the registry's interior
    // maps populated) before measurement starts, mirroring how
    // `ServiceSession` pre-resolves its `SessionMetrics` at assembly.
    netsched_obs::set_tracing(false);
    let obs = netsched_obs::ObsRegistry::default();
    let step_hist = obs.histogram("epoch.step_ns");
    let epoch_counter = obs.counter("epoch.count");
    let depth_gauge = obs.gauge("service.queue_depth");

    let live_before = universe.num_instances();
    let cross_before = conflict.cross_assembly_count();
    let before = allocations();
    for i in 0..8 {
        let _epoch_span = netsched_obs::span!("epoch.step");
        universe.apply_demand_delta(&[], &[], &mut delta);
        conflict.apply_delta(&universe, &delta);
        warm.splice(&universe, &delta);
        step_hist.record(1 + i as u64);
        epoch_counter.inc();
        depth_gauge.set(i);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state clean-shard splice epochs (with disabled-mode obs \
         hooks) must not touch the heap ({} allocations over 8 epochs)",
        after - before
    );
    // The epochs were real splices, not no-ops short-circuited upstream.
    assert_eq!(universe.num_instances(), live_before);
    assert_eq!(
        conflict.cross_assembly_count(),
        cross_before,
        "clean-shard epochs must splice, never re-assemble, the cross CSR"
    );
}
