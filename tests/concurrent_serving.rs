//! Contract suite of the pipelined serving tier (`ScheduleView` /
//! `prefetch_arrivals` / `PipelinedService`).
//!
//! Three properties, none of them assumed:
//!
//! 1. **No torn or uncertified reads.** Readers spinning on a
//!    [`ScheduleReader`] while the writer churns epochs only ever see
//!    whole published snapshots: every observation passes its publish-time
//!    fingerprint check, epochs are monotone, and the recorded staleness
//!    never exceeds one epoch.
//! 2. **Publication and prefetching are invisible to results.** A session
//!    with a view attached — and a session whose batches are announced
//!    via [`ServiceSession::prefetch_arrivals`] — produce bit-identical
//!    deltas, schedules and certificates to a plain session over the same
//!    trace.
//! 3. **The pipelined frontend is just a seating arrangement.** Replaying
//!    a trace through [`PipelinedService`] (one submission per epoch,
//!    queue lookahead feeding the prefetch) matches direct
//!    [`ServiceSession::step`] calls exactly.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};

use common::line_trace;
use netsched_core::AlgorithmConfig;
use netsched_service::{
    replay_trace, DemandEvent, DemandRequest, DemandTicket, PipelinedService, ResolveMode,
    ScheduleDelta, ServiceSession,
};
use netsched_workloads::{EventTrace, TraceEvent};

fn to_events(batch: &[TraceEvent], tickets: &[DemandTicket]) -> Vec<DemandEvent> {
    batch
        .iter()
        .map(|event| match event {
            TraceEvent::ArriveLine {
                release,
                deadline,
                processing,
                profit,
                height,
                access,
            } => DemandEvent::Arrive(DemandRequest::Line {
                release: *release,
                deadline: *deadline,
                processing: *processing,
                profit: *profit,
                height: *height,
                access: access.clone(),
            }),
            TraceEvent::Expire { arrival } => DemandEvent::Expire(tickets[*arrival]),
            TraceEvent::ArriveTree { .. } => unreachable!("line traces only"),
        })
        .collect()
}

/// Zeroes the wall-clock timing fields so deltas compare on structure:
/// everything else — tickets, admissions, evictions, reassignments,
/// profit, certificate, shard/instance counts, quality — must match bit
/// for bit.
fn scrub(mut deltas: Vec<ScheduleDelta>) -> Vec<ScheduleDelta> {
    for delta in &mut deltas {
        delta.stats.rebuild_seconds = 0.0;
        delta.stats.solve_seconds = 0.0;
        delta.stats.journal_seconds = 0.0;
    }
    deltas
}

fn arrivals_of(events: &[DemandEvent]) -> Vec<DemandRequest> {
    events
        .iter()
        .filter_map(|e| match e {
            DemandEvent::Arrive(r) => Some(r.clone()),
            DemandEvent::Expire(_) => None,
        })
        .collect()
}

/// The trace's batches as `DemandEvent` batches, resolving expiries
/// through the session's ticket numbering (tickets are assigned in
/// admission order, so the table can be computed without stepping).
fn event_batches(trace: &EventTrace, initial: Vec<DemandTicket>) -> Vec<Vec<DemandEvent>> {
    let mut tickets = initial;
    let mut next = tickets.len() as u64;
    let mut batches = Vec::with_capacity(trace.batches.len());
    for batch in &trace.batches {
        let events = to_events(batch, &tickets);
        for event in &events {
            if matches!(event, DemandEvent::Arrive(_)) {
                tickets.push(DemandTicket(next));
                next += 1;
            }
        }
        batches.push(events);
    }
    batches
}

#[test]
fn concurrent_readers_see_only_whole_certified_snapshots() {
    let (problem, trace) = line_trace(4, 30, 97, 0.3);
    let mut session = ServiceSession::for_line(&problem, AlgorithmConfig::deterministic(0.1))
        .with_resolve_mode(ResolveMode::Warm);
    let view = session.schedule_view();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let mut reader = view.reader();
            let stop = &stop;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) || reads == 0 {
                    let snap = reader.read();
                    assert!(
                        snap.verify_fingerprint(),
                        "torn snapshot at epoch {}",
                        snap.epoch()
                    );
                    assert!(
                        snap.epoch() >= last_epoch,
                        "published epochs must be monotone ({} after {})",
                        snap.epoch(),
                        last_epoch
                    );
                    // Internal consistency: the certificate published with
                    // a schedule must dominate its profit (weak duality) —
                    // a reader pairing fields from different epochs would
                    // trip this.
                    assert!(
                        snap.certificate().optimum_upper_bound + 1e-6 >= snap.profit(),
                        "certificate/profit mismatch at epoch {}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    reads += 1;
                }
            });
        }
        // The writer churns through the trace while the readers spin.
        replay_trace(&mut session, &trace).expect("trace replays");
        stop.store(true, Ordering::Release);
    });

    let report = session.obs_registry().snapshot();
    let staleness = report
        .histogram("read.staleness_epochs")
        .expect("readers recorded staleness");
    assert!(staleness.count >= 3, "every reader flushed its tallies");
    assert!(
        staleness.max <= 1,
        "staleness is bounded by one epoch, saw {}",
        staleness.max
    );
    assert_eq!(report.counter("read.count"), Some(staleness.count));
    let final_epoch = view.published_epoch();
    assert_eq!(final_epoch, session.epoch(), "last epoch was published");
    assert!(!view.epoch_in_flight());
}

#[test]
fn views_and_prefetching_never_change_results() {
    let (problem, trace) = line_trace(4, 28, 41, 0.25);
    let config = AlgorithmConfig::deterministic(0.1);

    for mode in [ResolveMode::Cold, ResolveMode::Warm] {
        // Baseline: plain session.
        let mut plain = ServiceSession::for_line(&problem, config).with_resolve_mode(mode);
        let plain_deltas = replay_trace(&mut plain, &trace).expect("plain replay");

        // A view attached before the first epoch.
        let mut viewed = ServiceSession::for_line(&problem, config).with_resolve_mode(mode);
        let view = viewed.schedule_view();
        let viewed_deltas = replay_trace(&mut viewed, &trace).expect("viewed replay");
        assert_eq!(
            scrub(plain_deltas.clone()),
            scrub(viewed_deltas),
            "{mode:?}: view changed results"
        );
        let mut reader = view.reader();
        let snap = reader.read();
        assert_eq!(snap.schedule(), viewed.schedule());
        assert_eq!(snap.certificate(), plain.certificate());
        assert!((snap.profit() - plain.profit()).abs() < 1e-12);

        // Every batch announced one epoch ahead.
        let mut prefetched = ServiceSession::for_line(&problem, config).with_resolve_mode(mode);
        let batches = event_batches(&trace, prefetched.live_tickets());
        let mut prefetched_deltas: Vec<ScheduleDelta> = Vec::new();
        for (i, events) in batches.iter().enumerate() {
            if let Some(next) = batches.get(i + 1) {
                let upcoming = arrivals_of(next);
                if !upcoming.is_empty() {
                    prefetched.prefetch_arrivals(&upcoming).expect("valid");
                }
            }
            prefetched_deltas.push(prefetched.step(events).expect("prefetched replay"));
        }
        assert_eq!(
            scrub(plain_deltas),
            scrub(prefetched_deltas),
            "{mode:?}: prefetch changed results"
        );
        if mode == ResolveMode::Warm {
            // The warm path actually exercised the overlapped solve.
            let hits = prefetched
                .obs_registry()
                .snapshot()
                .counter("pipeline.prefetch_hits")
                .unwrap_or(0);
            assert!(hits > 0, "warm replay never consumed a staged batch");
        }
    }
}

#[test]
fn pipelined_service_matches_direct_stepping() {
    let (problem, trace) = line_trace(3, 24, 7, 0.3);
    let config = AlgorithmConfig::deterministic(0.1);

    let mut direct =
        ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
    let direct_deltas = replay_trace(&mut direct, &trace).expect("direct replay");

    let session = ServiceSession::for_line(&problem, config).with_resolve_mode(ResolveMode::Warm);
    let batches = event_batches(&trace, session.live_tickets());
    let service = PipelinedService::new(session);
    // Submit everything up front so the worker's queue lookahead (and thus
    // the prefetch path) engages, then collect in order.
    let handles: Vec<_> = batches
        .into_iter()
        .map(|events| service.submit(events).expect("accepted"))
        .collect();
    let piped_deltas: Vec<ScheduleDelta> = handles
        .into_iter()
        .map(|h| h.wait().expect("epoch ran"))
        .collect();
    assert_eq!(scrub(direct_deltas), scrub(piped_deltas));

    let session = service.shutdown();
    assert_eq!(session.epoch(), direct.epoch());
    assert_eq!(session.schedule(), direct.schedule());
    assert_eq!(session.certificate(), direct.certificate());
}
